#include "core/delivery_queue.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "util/contracts.hpp"

namespace svs::core {

DeliveryQueue::DeliveryQueue(obs::RelationPtr relation, net::ProcessId self,
                             NodeObserver* observer, bool use_index)
    : relation_(std::move(relation)),
      self_(self),
      observer_(observer),
      use_index_(use_index) {
  SVS_REQUIRE(relation_ != nullptr, "a relation oracle is required");
}

// ---------------------------------------------------------------------------
// sender columns (SoA index)
// ---------------------------------------------------------------------------

std::size_t DeliveryQueue::SenderColumn::lower_bound(std::uint64_t seq) const {
  const auto begin = seqs.begin() + static_cast<std::ptrdiff_t>(head);
  return static_cast<std::size_t>(
      std::lower_bound(begin, seqs.end(), seq) - seqs.begin());
}

std::size_t DeliveryQueue::SenderColumn::upper_bound(std::uint64_t seq) const {
  const auto begin = seqs.begin() + static_cast<std::ptrdiff_t>(head);
  return static_cast<std::size_t>(
      std::upper_bound(begin, seqs.end(), seq) - seqs.begin());
}

void DeliveryQueue::SenderColumn::insert_at(std::size_t pos,
                                            const DataMessagePtr& m,
                                            List::iterator it) {
  const auto at = static_cast<std::ptrdiff_t>(pos);
  seqs.insert(seqs.begin() + at, m->seq());
  views.insert(views.begin() + at, m->view());
  notes.insert(notes.begin() + at, &m->annotation());
  slots.insert(slots.begin() + at, it);
}

void DeliveryQueue::SenderColumn::erase_at(std::size_t pos) {
  if (pos == head) {
    // The FIFO pop: advance the head offset; reclaim the dead prefix once
    // it dominates the column (amortized O(1)).
    ++head;
    if (head > 32 && head * 2 > seqs.size()) {
      const auto at = static_cast<std::ptrdiff_t>(head);
      seqs.erase(seqs.begin(), seqs.begin() + at);
      views.erase(views.begin(), views.begin() + at);
      notes.erase(notes.begin(), notes.begin() + at);
      slots.erase(slots.begin(), slots.begin() + at);
      head = 0;
    }
    return;
  }
  const auto at = static_cast<std::ptrdiff_t>(pos);
  seqs.erase(seqs.begin() + at);
  views.erase(views.begin() + at);
  notes.erase(notes.begin() + at);
  slots.erase(slots.begin() + at);
}

void DeliveryQueue::SenderColumn::sweep_punched() {
  std::size_t w = head;
  for (std::size_t r = head; r < seqs.size(); ++r) {
    if (notes[r] == nullptr) continue;
    if (w != r) {
      seqs[w] = seqs[r];
      views[w] = views[r];
      notes[w] = notes[r];
      slots[w] = slots[r];
    }
    ++w;
  }
  seqs.resize(w);
  views.resize(w);
  notes.resize(w);
  slots.resize(w);
}

// ---------------------------------------------------------------------------
// queue
// ---------------------------------------------------------------------------

void DeliveryQueue::push_data(const DataMessagePtr& m) {
  entries_.push_back(Entry{m, std::nullopt});
  ++data_count_;
  accepted_ids_.insert(m->id());
  if (fast_path()) index_insert(m, std::prev(entries_.end()));
}

void DeliveryQueue::push_data_flush(const DataMessagePtr& m) {
  auto pos = entries_.end();
  if (fast_path()) {
    const auto sender = by_sender_.find(m->sender());
    if (sender != by_sender_.end()) {
      const std::size_t above = sender->second.upper_bound(m->seq());
      if (above < sender->second.size()) pos = sender->second.slots[above];
    }
  } else {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->data != nullptr && it->data->sender() == m->sender() &&
          it->data->seq() > m->seq()) {
        pos = it;
        break;
      }
    }
  }
  const auto it = entries_.insert(pos, Entry{m, std::nullopt});
  ++data_count_;
  accepted_ids_.insert(m->id());
  if (fast_path()) index_insert(m, it);
}

void DeliveryQueue::push_view(const View& v) {
  entries_.push_back(Entry{nullptr, v});
}

std::optional<DeliveryQueue::Entry> DeliveryQueue::pop_front() {
  if (entries_.empty()) return std::nullopt;
  Entry entry = std::move(entries_.front());
  if (entry.data != nullptr) {
    SVS_ASSERT(data_count_ > 0, "data count out of sync with queue");
    --data_count_;
    if (fast_path()) index_erase(*entry.data);
  }
  entries_.pop_front();
  return entry;
}

void DeliveryQueue::index_insert(const DataMessagePtr& m, List::iterator it) {
  SenderColumn& column = by_sender_[m->sender()];
  // FIFO reception makes the common case an append (the freshest seq of
  // the sender); only the t7 flush repairs a gap mid-column.
  if (column.empty() || column.seqs.back() < m->seq()) {
    column.insert_at(column.size(), m, it);
    return;
  }
  const std::size_t pos = column.lower_bound(m->seq());
  SVS_ASSERT(pos == column.size() || column.seqs[pos] != m->seq(),
             "duplicate (sender, seq) in the delivery queue");
  column.insert_at(pos, m, it);
}

void DeliveryQueue::index_erase(const DataMessage& m) {
  const auto sender = by_sender_.find(m.sender());
  SVS_ASSERT(sender != by_sender_.end(), "index missing sender");
  SenderColumn& column = sender->second;
  const std::size_t pos = column.lower_bound(m.seq());
  SVS_ASSERT(pos < column.size() && column.seqs[pos] == m.seq(),
             "index missing entry");
  column.erase_at(pos);
  if (column.empty()) by_sender_.erase(sender);
}

DeliveryQueue::List::iterator DeliveryQueue::erase_entry(
    List::iterator it, const DataMessagePtr& by) {
  if (observer_ != nullptr) observer_->on_purge(self_, it->data, by);
  accepted_ids_.erase(it->data->id());
  --data_count_;
  ++stats_.purged;
  return entries_.erase(it);
}

// ---------------------------------------------------------------------------
// accepted set
// ---------------------------------------------------------------------------

std::size_t DeliveryQueue::collect_delivered(
    const std::function<std::uint64_t(net::ProcessId)>& floor_of) {
  std::map<net::ProcessId, std::uint64_t> floors;
  const auto stable = [&](const DataMessagePtr& m) {
    const auto [it, inserted] = floors.emplace(m->sender(), 0);
    if (inserted) it->second = floor_of(m->sender());
    return m->seq() <= it->second;
  };
  std::size_t collected = 0;
  std::erase_if(delivered_view_, [&](const DataMessagePtr& m) {
    if (!stable(m)) return false;
    accepted_ids_.erase(m->id());
    ++collected;
    return true;
  });
  return collected;
}

// ---------------------------------------------------------------------------
// semantic purging
// ---------------------------------------------------------------------------

bool DeliveryQueue::covered_by_accepted(const DataMessage& m, ViewId cv) {
  SVS_ASSERT(m.view() == cv, "t3/t7 only test messages of the current view");
  const auto covers = [&](const DataMessagePtr& candidate) {
    ++stats_.cover_scan_steps;
    return candidate->view() == m.view() &&
           relation_->covers(candidate->ref(), m.ref());
  };
  // Per-sender relations need a covering message from the same sender with
  // a higher sequence number.  FIFO channels deliver per-sender seqs in
  // order, so everything delivered from m's sender is below m's seq (at t7
  // the high-water filter already removed candidates at or below it) —
  // scanning the unbounded delivered history would never match.  Only
  // cross-sender relations (e.g. the test-only ExplicitRelation) require
  // the full scan.
  if (!relation_->per_sender()) {
    for (const auto& d : delivered_view_) {
      if (covers(d)) return true;
    }
    for (const auto& e : entries_) {
      if (e.data != nullptr && covers(e.data)) return true;
    }
    return false;
  }
  if (!use_index_) {
    for (const auto& e : entries_) {
      if (e.data != nullptr && covers(e.data)) return true;
    }
    return false;
  }
  // Indexed: only queued entries of m's sender with a higher seq qualify —
  // a linear walk over the packed columns, no list-node chasing.
  const auto sender = by_sender_.find(m.sender());
  if (sender == by_sender_.end()) return false;
  const SenderColumn& column = sender->second;
  const obs::MessageRef victim = m.ref();
  for (std::size_t i = column.upper_bound(m.seq()); i < column.size(); ++i) {
    ++stats_.cover_scan_steps;
    if (column.views[i] != m.view()) continue;
    const obs::MessageRef candidate{m.sender(), column.seqs[i],
                                    column.notes[i]};
    if (relation_->covers(candidate, victim)) return true;
  }
  return false;
}

std::size_t DeliveryQueue::count_victims(const DataMessage& by, ViewId cv) {
  SVS_ASSERT(by.view() == cv, "purging is restricted to the current view");
  std::size_t victims = 0;
  if (!fast_path()) {
    const auto is_victim = [&](const DataMessagePtr& candidate) {
      ++stats_.purge_scan_steps;
      return candidate->view() == by.view() &&
             relation_->covers(by.ref(), candidate->ref());
    };
    for (const auto& e : entries_) {
      if (e.data != nullptr && is_victim(e.data)) ++victims;
    }
    return victims;
  }
  const auto sender = by_sender_.find(by.sender());
  if (sender == by_sender_.end()) return 0;
  const SenderColumn& column = sender->second;
  const obs::MessageRef coverer = by.ref();
  const std::uint64_t floor = relation_->coverage_floor(coverer);
  for (std::size_t i = column.lower_bound(floor);
       i < column.size() && column.seqs[i] < by.seq(); ++i) {
    ++stats_.purge_scan_steps;
    if (column.views[i] != by.view()) continue;
    const obs::MessageRef candidate{by.sender(), column.seqs[i],
                                    column.notes[i]};
    if (relation_->covers(coverer, candidate)) ++victims;
  }
  return victims;
}

std::size_t DeliveryQueue::purge_with(const DataMessagePtr& by, ViewId cv) {
  SVS_ASSERT(by->view() == cv, "purging is restricted to the current view");
  std::size_t removed = 0;
  if (!fast_path()) {
    const auto is_victim = [&](const DataMessagePtr& candidate) {
      ++stats_.purge_scan_steps;
      return candidate->view() == by->view() &&
             relation_->covers(by->ref(), candidate->ref());
    };
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->data != nullptr && is_victim(it->data)) {
        it = erase_entry(it, by);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }
  const auto sender = by_sender_.find(by->sender());
  if (sender == by_sender_.end()) return 0;
  SenderColumn& column = sender->second;
  const obs::MessageRef coverer = by->ref();
  const std::uint64_t floor = relation_->coverage_floor(coverer);
  for (std::size_t i = column.lower_bound(floor);
       i < column.size() && column.seqs[i] < by->seq(); ++i) {
    ++stats_.purge_scan_steps;
    if (column.views[i] != by->view()) continue;
    const obs::MessageRef candidate{by->sender(), column.seqs[i],
                                    column.notes[i]};
    if (!relation_->covers(coverer, candidate)) continue;
    erase_entry(column.slots[i], by);
    column.punch(i);
    ++removed;
  }
  if (removed > 0) {
    column.sweep_punched();
    if (column.empty()) by_sender_.erase(sender);
  }
  return removed;
}

std::size_t DeliveryQueue::purge_full(ViewId cv) {
  (void)cv;  // purge_full relates entries pairwise by their own views
  std::size_t removed = 0;
  if (!fast_path()) {
    // purge(S): remove every data entry covered by another entry of the
    // same view still in S.  Quadratic over a queue that is at most a few
    // dozen entries long (§5.3 buffer sizes).
    for (auto it = entries_.begin(); it != entries_.end();) {
      DataMessagePtr coverer;
      if (it->data != nullptr) {
        for (const auto& other : entries_) {
          ++stats_.purge_scan_steps;
          if (other.data != nullptr && other.data != it->data &&
              other.data->view() == it->data->view() &&
              relation_->covers(other.data->ref(), it->data->ref())) {
            coverer = other.data;
            break;
          }
        }
      }
      if (coverer != nullptr) {
        it = erase_entry(it, coverer);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }
  // Indexed: a coverer shares the victim's sender and has a higher seq, so
  // each sender's entries are checked only against their own successors —
  // sub-quadratic in the queue, quadratic only within one sender's run.
  // Seq-ascending order matches the reference queue order per sender (FIFO
  // reception; flushed entries carry the highest seqs), so the evolving
  // live set is identical: victims are only ever removed at or before the
  // position under scrutiny, and coverers are successors, which the
  // reference path had not removed yet either.
  for (auto sender = by_sender_.begin(); sender != by_sender_.end();) {
    SenderColumn& column = sender->second;
    std::size_t punched = 0;
    for (std::size_t i = column.head; i < column.size(); ++i) {
      const obs::MessageRef victim{sender->first, column.seqs[i],
                                   column.notes[i]};
      for (std::size_t j = i + 1; j < column.size(); ++j) {
        ++stats_.purge_scan_steps;
        if (column.views[j] != column.views[i]) continue;
        const obs::MessageRef candidate{sender->first, column.seqs[j],
                                        column.notes[j]};
        if (!relation_->covers(candidate, victim)) continue;
        erase_entry(column.slots[i], column.slots[j]->data);
        column.punch(i);
        ++punched;
        ++removed;
        break;
      }
    }
    if (punched > 0) column.sweep_punched();
    sender = column.empty() ? by_sender_.erase(sender) : std::next(sender);
  }
  return removed;
}

// ---------------------------------------------------------------------------
// view change support
// ---------------------------------------------------------------------------

void DeliveryQueue::append_local_pred(ViewId cv,
                                      std::vector<DataMessagePtr>& out) const {
  out.insert(out.end(), delivered_view_.begin(), delivered_view_.end());
  for (const auto& e : entries_) {
    if (e.data != nullptr && e.data->view() == cv) out.push_back(e.data);
  }
}

void DeliveryQueue::reset_view() {
  delivered_view_.clear();
  accepted_ids_.clear();
}

}  // namespace svs::core
