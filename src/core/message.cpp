#include "core/message.hpp"

#include "util/bytes.hpp"

namespace svs::core {

std::size_t DataMessage::wire_size() const {
  // type tag + sender + seq + view (varints) + annotation + payload.
  return 1 + util::varint_size(sender_.value()) + util::varint_size(seq_) +
         util::varint_size(view_.value()) + annotation_.wire_size() +
         (payload_ != nullptr ? payload_->wire_size() : 0);
}

}  // namespace svs::core
