#include "core/message.hpp"

#include "util/bytes.hpp"

namespace svs::core {

std::size_t DataMessage::compute_wire_size() const {
  // Exactly what the codec writes: type tag + sender + seq + view (varints)
  // + annotation + payload framing (kind + length varints) + payload body
  // + piggyback presence byte (and section body when present).
  const std::size_t payload_bytes =
      payload_ != nullptr ? payload_->wire_size() : 0;
  const std::uint32_t kind = payload_ != nullptr ? payload_->payload_kind() : 0;
  return 1 + util::varint_size(sender_.value()) + util::varint_size(seq_) +
         util::varint_size(view_.value()) + annotation_.wire_size() +
         util::varint_size(kind) + util::varint_size(payload_bytes) +
         payload_bytes + 1 +
         (piggyback_.has_value() ? piggyback_->wire_size() : 0);
}

}  // namespace svs::core
