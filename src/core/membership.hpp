// Membership policy: decides *when* to trigger view changes.
//
// §3.2: "The set of events that may lead to a view change are not relevant
// to the definition of Semantic View Synchrony [...] Examples of possible
// causes [...] are the occurrence of failure suspicions, the lack of
// available buffer space at one or more processes and simply the existence
// of processes that voluntarily want to leave."
//
// This policy implements the first two causes (the third is the
// application calling Node::request_view_change itself):
//   * suspicion-driven exclusion, after a grace period, initiated by the
//     lowest-ranked unsuspected member to avoid INIT storms (the protocol
//     tolerates concurrent INITs; this is just hygiene);
//   * optional blockage-driven exclusion: when the local producer has been
//     flow-blocked for longer than a grace period, propose removing the
//     members whose outgoing buffers are saturated.  Disabled by default —
//     the whole point of SVS is to make this unnecessary for transient
//     perturbations.
#pragma once

#include <functional>
#include <vector>

#include "core/node.hpp"
#include "fd/failure_detector.hpp"
#include "sim/simulator.hpp"

namespace svs::core {

class MembershipPolicy {
 public:
  struct Config {
    /// How long a suspicion must persist before acting on it.
    sim::Duration suspicion_grace = sim::Duration::millis(20);
    /// Exclude saturated receivers when the producer stays blocked.
    bool exclude_on_blockage = false;
    sim::Duration blockage_grace = sim::Duration::millis(500);
  };

  MembershipPolicy(sim::Simulator& simulator, Node& node,
                   fd::FailureDetector& detector, Config config);

  MembershipPolicy(const MembershipPolicy&) = delete;
  MembershipPolicy& operator=(const MembershipPolicy&) = delete;

  /// Producers report flow-control blockage so the blockage watchdog can
  /// arm (no-op unless exclude_on_blockage).
  void producer_blocked();
  void producer_unblocked();

  [[nodiscard]] std::uint64_t exclusions_triggered() const {
    return exclusions_triggered_;
  }

 private:
  void reevaluate_suspicions();
  void act_on_suspicions();
  void act_on_blockage();
  [[nodiscard]] std::vector<net::ProcessId> current_suspects() const;
  [[nodiscard]] bool is_initiator() const;

  sim::Simulator& sim_;
  Node& node_;
  fd::FailureDetector& fd_;
  Config config_;
  sim::EventId suspicion_timer_{};
  sim::EventId blockage_timer_{};
  std::uint64_t exclusions_triggered_ = 0;
};

}  // namespace svs::core
