#include "core/stability_tracker.hpp"

#include <algorithm>

#include "util/bytes.hpp"

namespace svs::core {

void StabilityTracker::note_seen(net::ProcessId sender, std::uint64_t seq) {
  const auto [it, inserted] = seen_seq_.try_emplace(sender);
  Reception& r = it->second;
  if (inserted) {
    r.base = r.floor = r.high = seq;
    changed_.insert(sender);
    entry_wire_bytes_ +=
        util::varint_size(sender.value()) + util::varint_size(seq);
    dirty_ = true;
    return;
  }
  if (seq > r.high) {
    // Only the high-water mark is gossiped, so only its rise dirties the
    // round (gap-closing receptions below it change nothing on the wire).
    entry_wire_bytes_ += util::varint_size(seq) - util::varint_size(r.high);
    r.high = seq;
    changed_.insert(sender);
    dirty_ = true;
  }
  if (seq == r.floor + 1) {
    // Contiguous extension; absorb any sparse entries it now connects.
    ++r.floor;
    auto next = r.sparse.begin();
    while (next != r.sparse.end() && *next == r.floor + 1) {
      ++r.floor;
      next = r.sparse.erase(next);
    }
  } else if (seq > r.floor + 1) {
    r.sparse.insert(seq);  // received across a gap (or ahead of the floor)
  } else if (seq + 1 == r.base) {
    // A flush-in just below the base (the view's first arrivals were purged
    // out of the channel): extend downwards.
    --r.base;
  } else if (seq < r.base) {
    r.sparse.insert(seq);  // below-base reception with a further gap
  }
  // seq within [base, floor] or already sparse: duplicate note, no-op.
}

bool StabilityTracker::received(net::ProcessId sender,
                                std::uint64_t seq) const {
  const auto it = seen_seq_.find(sender);
  if (it == seen_seq_.end()) return false;
  const Reception& r = it->second;
  return (seq >= r.base && seq <= r.floor) || r.sparse.contains(seq);
}

std::optional<std::uint64_t> StabilityTracker::high_water(
    net::ProcessId sender) const {
  const auto it = seen_seq_.find(sender);
  if (it == seen_seq_.end()) return std::nullopt;
  return it->second.high;
}

StabilityMessage::Seen StabilityTracker::snapshot() const {
  StabilityMessage::Seen out;
  out.reserve(seen_seq_.size());
  for (const auto& [sender, reception] : seen_seq_) {
    out.emplace_back(sender, reception.high);
  }
  return out;
}

StabilityMessage::Seen StabilityTracker::take_snapshot() {
  changed_.clear();
  dirty_ = false;
  return snapshot();
}

StabilityMessage::Seen StabilityTracker::take_delta() {
  StabilityMessage::Seen delta;
  delta.reserve(changed_.size());
  for (const auto sender : changed_) {
    delta.emplace_back(sender, seen_seq_.at(sender).high);
  }
  changed_.clear();
  dirty_ = false;
  return delta;
}

void StabilityTracker::merge_report(net::ProcessId from,
                                    const StabilityMessage::Seen& seen) {
  auto& vector = peer_seen_[from];
  for (const auto& [sender, seq] : seen) {
    auto& high = vector[sender];
    high = std::max(high, seq);
  }
}

std::uint64_t StabilityTracker::floor_of(net::ProcessId sender,
                                         const View& view,
                                         net::ProcessId self) const {
  const auto own = seen_seq_.find(sender);
  std::uint64_t floor = own == seen_seq_.end() ? 0 : own->second.high;
  for (const auto p : view.members()) {
    if (p == self) continue;
    const auto vec = peer_seen_.find(p);
    if (vec == peer_seen_.end()) return 0;
    const auto it = vec->second.find(sender);
    const std::uint64_t reported = it == vec->second.end() ? 0 : it->second;
    floor = std::min(floor, reported);
  }
  return floor;
}

void StabilityTracker::reset() {
  seen_seq_.clear();
  peer_seen_.clear();
  changed_.clear();
  entry_wire_bytes_ = 0;
  dirty_ = false;
}

}  // namespace svs::core
