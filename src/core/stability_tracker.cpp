#include "core/stability_tracker.hpp"

#include <algorithm>

#include "util/bytes.hpp"

namespace svs::core {

void StabilityTracker::note_seen(net::ProcessId sender, std::uint64_t seq) {
  const auto [it, inserted] = seen_seq_.try_emplace(sender, seq);
  if (inserted) {
    changed_.insert(sender);
    entry_wire_bytes_ +=
        util::varint_size(sender.value()) + util::varint_size(seq);
  } else if (seq > it->second) {
    entry_wire_bytes_ += util::varint_size(seq) - util::varint_size(it->second);
    it->second = seq;
    changed_.insert(sender);
  }
  dirty_ = true;
}

std::optional<std::uint64_t> StabilityTracker::seen(
    net::ProcessId sender) const {
  const auto it = seen_seq_.find(sender);
  if (it == seen_seq_.end()) return std::nullopt;
  return it->second;
}

StabilityMessage::Seen StabilityTracker::snapshot() const {
  return StabilityMessage::Seen(seen_seq_.begin(), seen_seq_.end());
}

StabilityMessage::Seen StabilityTracker::take_snapshot() {
  changed_.clear();
  dirty_ = false;
  return snapshot();
}

StabilityMessage::Seen StabilityTracker::take_delta() {
  StabilityMessage::Seen delta;
  delta.reserve(changed_.size());
  for (const auto sender : changed_) {
    delta.emplace_back(sender, seen_seq_.at(sender));
  }
  changed_.clear();
  dirty_ = false;
  return delta;
}

void StabilityTracker::merge_report(net::ProcessId from,
                                    const StabilityMessage::Seen& seen) {
  auto& vector = peer_seen_[from];
  for (const auto& [sender, seq] : seen) {
    auto& high = vector[sender];
    high = std::max(high, seq);
  }
}

std::uint64_t StabilityTracker::floor_of(net::ProcessId sender,
                                         const View& view,
                                         net::ProcessId self) const {
  const auto own = seen_seq_.find(sender);
  std::uint64_t floor = own == seen_seq_.end() ? 0 : own->second;
  for (const auto p : view.members()) {
    if (p == self) continue;
    const auto vec = peer_seen_.find(p);
    if (vec == peer_seen_.end()) return 0;
    const auto it = vec->second.find(sender);
    const std::uint64_t reported = it == vec->second.end() ? 0 : it->second;
    floor = std::min(floor, reported);
  }
  return floor;
}

void StabilityTracker::reset() {
  seen_seq_.clear();
  peer_seen_.clear();
  changed_.clear();
  entry_wire_bytes_ = 0;
  dirty_ = false;
}

}  // namespace svs::core
