#include "core/membership.hpp"

#include <algorithm>

namespace svs::core {

MembershipPolicy::MembershipPolicy(sim::Simulator& simulator, Node& node,
                                   fd::FailureDetector& detector,
                                   Config config)
    : sim_(simulator), node_(node), fd_(detector), config_(config) {
  fd_.subscribe([this] { reevaluate_suspicions(); });
  node_.subscribe_install([this](const View&) { reevaluate_suspicions(); });
}

std::vector<net::ProcessId> MembershipPolicy::current_suspects() const {
  std::vector<net::ProcessId> out;
  for (const auto p : node_.current_view().members()) {
    if (p != node_.id() && fd_.suspects(p)) out.push_back(p);
  }
  return out;
}

bool MembershipPolicy::is_initiator() const {
  // Lowest-ranked unsuspected member initiates.
  for (const auto p : node_.current_view().members()) {
    if (p == node_.id()) return true;
    if (!fd_.suspects(p)) return false;
  }
  return false;
}

void MembershipPolicy::reevaluate_suspicions() {
  if (node_.excluded()) return;
  const auto suspects = current_suspects();
  if (suspects.empty()) {
    if (suspicion_timer_.valid()) {
      sim_.cancel(suspicion_timer_);
      suspicion_timer_ = sim::EventId{};
    }
    return;
  }
  if (suspicion_timer_.valid()) return;  // already armed
  suspicion_timer_ = sim_.schedule_after(config_.suspicion_grace, [this] {
    suspicion_timer_ = sim::EventId{};
    act_on_suspicions();
  });
}

void MembershipPolicy::act_on_suspicions() {
  if (node_.excluded() || node_.blocked()) {
    // A change is already running; re-arm so persisting suspicions are
    // retried once it settles (the install callback also re-evaluates).
    reevaluate_suspicions();
    return;
  }
  const auto suspects = current_suspects();
  if (suspects.empty()) return;
  // Primary-partition guard: when the suspected set is half the view or
  // more, the unsuspected remainder (this node's side) may itself be the
  // partitioned minority — an unreliable detector cannot tell "they all
  // died" from "I am cut off".  Excising a live majority would strand the
  // group: the resulting rump view can lose its alive quorum at the next
  // real crash and block every later view change forever (found by the
  // scenario explorer: asymmetric partition + heartbeat FD + late crash).
  // Only a side that retains a strict majority may act; a true minority
  // waits — either the suspicions heal, or the majority excludes us.
  const std::size_t view_size = node_.current_view().size();
  if (2 * (view_size - suspects.size()) <= view_size) {
    reevaluate_suspicions();  // keep watching; crashes re-trigger the timer
    return;
  }
  if (!is_initiator()) return;  // someone ahead of us will take care of it
  if (node_.request_view_change(suspects)) ++exclusions_triggered_;
}

void MembershipPolicy::producer_blocked() {
  if (!config_.exclude_on_blockage || blockage_timer_.valid()) return;
  blockage_timer_ = sim_.schedule_after(config_.blockage_grace, [this] {
    blockage_timer_ = sim::EventId{};
    act_on_blockage();
  });
}

void MembershipPolicy::producer_unblocked() {
  if (blockage_timer_.valid()) {
    sim_.cancel(blockage_timer_);
    blockage_timer_ = sim::EventId{};
  }
}

void MembershipPolicy::act_on_blockage() {
  if (node_.excluded() || node_.blocked()) return;
  const auto saturated = node_.saturated_peers();
  if (saturated.empty()) return;
  if (node_.request_view_change(saturated)) ++exclusions_triggered_;
}

}  // namespace svs::core
