#include "net/dgram.hpp"

#include "util/contracts.hpp"

namespace svs::net {
namespace {

constexpr std::uint8_t kFlagVerdictValid = 0x01;
constexpr std::uint8_t kFlagVerdictAccept = 0x02;
constexpr std::uint8_t kFlagWindowProbe = 0x04;
constexpr std::uint8_t kKnownFlags =
    kFlagVerdictValid | kFlagVerdictAccept | kFlagWindowProbe;

void write_ack(util::ByteWriter& w, const AckBlock& ack) {
  w.u64(ack.cum);
  SVS_REQUIRE(ack.sacks.size() <= Datagram::kMaxSackRanges,
              "too many sack ranges for one datagram");
  w.u64(ack.sacks.size());
  // Delta-coded: each range starts at previous_end + gap + 1, so canonical
  // (ascending, non-adjacent) sequences are the only encodable ones.
  std::uint64_t prev_end = ack.cum;
  for (const auto& r : ack.sacks) {
    SVS_REQUIRE(r.first > prev_end + 1 && r.last >= r.first,
                "sack ranges must be ascending and non-adjacent to cum");
    w.u64(r.first - prev_end - 1);  // gap, >= 1
    w.u64(r.last - r.first + 1);    // len, >= 1
    prev_end = r.last;
  }
  w.u32(ack.window);
  std::uint8_t flags = 0;
  if (ack.verdict_valid) flags |= kFlagVerdictValid;
  if (ack.verdict_accept) flags |= kFlagVerdictAccept;
  if (ack.window_probe) flags |= kFlagWindowProbe;
  w.u8(flags);
  w.u64(ack.verdict_seq);
}

AckBlock read_ack(util::ByteReader& r) {
  AckBlock ack;
  ack.cum = r.u64();
  const std::uint64_t count = r.u64();
  SVS_REQUIRE(count <= Datagram::kMaxSackRanges,
              "datagram sack range count out of bounds");
  ack.sacks.reserve(static_cast<std::size_t>(count));
  std::uint64_t prev_end = ack.cum;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t gap = r.u64();
    const std::uint64_t len = r.u64();
    SVS_REQUIRE(gap >= 1 && len >= 1, "sack range gap and length must be >= 1");
    AckBlock::Range range;
    range.first = prev_end + gap + 1;
    SVS_REQUIRE(range.first > prev_end, "sack range overflow");
    range.last = range.first + len - 1;
    SVS_REQUIRE(range.last >= range.first, "sack range overflow");
    prev_end = range.last;
    ack.sacks.push_back(range);
  }
  ack.window = r.u32();
  const std::uint8_t flags = r.u8();
  SVS_REQUIRE((flags & ~kKnownFlags) == 0, "unknown datagram flag bits");
  ack.verdict_valid = (flags & kFlagVerdictValid) != 0;
  ack.verdict_accept = (flags & kFlagVerdictAccept) != 0;
  ack.window_probe = (flags & kFlagWindowProbe) != 0;
  SVS_REQUIRE(ack.verdict_valid || !ack.verdict_accept,
              "verdict_accept without verdict_valid");
  ack.verdict_seq = r.u64();
  SVS_REQUIRE(ack.verdict_valid || ack.verdict_seq == 0,
              "verdict_seq without verdict_valid");
  return ack;
}

void write_header(util::ByteWriter& w, Datagram::Kind kind) {
  w.u8(Datagram::kMagic);
  w.u8(static_cast<std::uint8_t>(kind));
}

}  // namespace

namespace {

void write_data_head(util::ByteWriter& w, std::uint32_t from, std::uint32_t to,
                     std::uint8_t lane, std::uint64_t seq,
                     const AckBlock& ack) {
  SVS_REQUIRE(seq >= 1, "link sequence numbers start at 1");
  SVS_REQUIRE(lane <= 1, "lane byte out of range");
  write_header(w, Datagram::Kind::data);
  w.u32(from);
  w.u32(to);
  w.u8(lane);
  w.u64(seq);
  write_ack(w, ack);
}

}  // namespace

util::Bytes Datagram::encode_data(std::uint32_t from, std::uint32_t to,
                                  std::uint8_t lane, std::uint64_t seq,
                                  const AckBlock& ack,
                                  const util::Bytes& frame) {
  SVS_REQUIRE(!frame.empty(), "codec frames are never empty");
  util::ByteWriter w;
  write_data_head(w, from, to, lane, seq, ack);
  w.u64(1);
  w.u64(frame.size());
  w.bytes(frame.data(), frame.size());
  return w.take();
}

util::Bytes Datagram::encode_data(std::uint32_t from, std::uint32_t to,
                                  std::uint8_t lane, std::uint64_t seq,
                                  const AckBlock& ack,
                                  std::span<const FramePtr> frames) {
  SVS_REQUIRE(frames.size() >= 1 && frames.size() <= kMaxBatchFrames,
              "batch size out of bounds");
  util::ByteWriter w;
  write_data_head(w, from, to, lane, seq, ack);
  w.u64(frames.size());
  for (const FramePtr& frame : frames) {
    SVS_REQUIRE(frame != nullptr && !frame->empty(),
                "codec frames are never empty");
    w.u64(frame->size());
    w.bytes(frame->data(), frame->size());
  }
  return w.take();
}

util::Bytes Datagram::encode_ack(std::uint32_t from, std::uint32_t to,
                                 std::uint8_t lane, const AckBlock& ack) {
  SVS_REQUIRE(lane <= 1, "lane byte out of range");
  util::ByteWriter w;
  write_header(w, Kind::ack);
  w.u32(from);
  w.u32(to);
  w.u8(lane);
  write_ack(w, ack);
  return w.take();
}

util::Bytes Datagram::encode_join(std::uint32_t id, std::uint16_t port) {
  util::ByteWriter w;
  write_header(w, Kind::join);
  w.u32(id);
  w.u32(port);
  return w.take();
}

util::Bytes Datagram::encode_roster(
    const std::vector<std::pair<std::uint32_t, std::uint16_t>>& members) {
  SVS_REQUIRE(members.size() <= kMaxRoster, "roster too large for a datagram");
  util::ByteWriter w;
  write_header(w, Kind::roster);
  w.u64(members.size());
  for (const auto& [id, port] : members) {
    w.u32(id);
    w.u32(port);
  }
  return w.take();
}

Datagram Datagram::decode(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  SVS_REQUIRE(r.u8() == kMagic, "bad datagram magic");
  const std::uint8_t kind_byte = r.u8();
  SVS_REQUIRE(kind_byte >= 1 && kind_byte <= 4, "unknown datagram kind");
  Datagram d;
  d.kind = static_cast<Kind>(kind_byte);
  switch (d.kind) {
    case Kind::data: {
      d.from = r.u32();
      d.to = r.u32();
      d.lane = r.u8();
      SVS_REQUIRE(d.lane <= 1, "datagram lane byte out of range");
      d.seq = r.u64();
      SVS_REQUIRE(d.seq >= 1, "data datagram with zero link seq");
      d.ack = read_ack(r);
      const std::uint64_t count = r.u64();
      SVS_REQUIRE(count >= 1 && count <= kMaxBatchFrames,
                  "data datagram batch count out of bounds");
      d.payloads.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t len = r.u64();
        SVS_REQUIRE(len >= 1 && len <= r.remaining(),
                    "data datagram frame length mismatch");
        const auto start = bytes.begin() +
                           static_cast<std::ptrdiff_t>(r.position());
        d.payloads.emplace_back(start,
                                start + static_cast<std::ptrdiff_t>(len));
        r.skip(static_cast<std::size_t>(len));
      }
      // The frames must fill the datagram exactly — the trailing-bytes
      // check below enforces it.
      break;
    }
    case Kind::ack: {
      d.from = r.u32();
      d.to = r.u32();
      d.lane = r.u8();
      SVS_REQUIRE(d.lane <= 1, "datagram lane byte out of range");
      d.ack = read_ack(r);
      break;
    }
    case Kind::join: {
      d.join_id = r.u32();
      const std::uint32_t port = r.u32();
      SVS_REQUIRE(port >= 1 && port <= 65535, "join port out of range");
      d.join_port = static_cast<std::uint16_t>(port);
      break;
    }
    case Kind::roster: {
      const std::uint64_t count = r.u64();
      SVS_REQUIRE(count <= kMaxRoster, "roster count out of bounds");
      d.roster.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint32_t id = r.u32();
        const std::uint32_t port = r.u32();
        SVS_REQUIRE(port >= 1 && port <= 65535, "roster port out of range");
        d.roster.emplace_back(id, static_cast<std::uint16_t>(port));
      }
      break;
    }
  }
  SVS_REQUIRE(r.exhausted(), "trailing bytes after datagram");
  return d;
}

}  // namespace svs::net
