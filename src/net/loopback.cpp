#include "net/loopback.hpp"

#include <utility>

#include "net/codec.hpp"
#include "util/contracts.hpp"

namespace svs::net {

ThreadedLoopback::~ThreadedLoopback() {
  for (const auto& channel : channels_) {
    {
      const std::lock_guard<std::mutex> lock(channel->mutex);
      channel->stop = true;
    }
    channel->frame_ready.notify_one();
  }
  for (const auto& channel : channels_) {
    if (channel->thread.joinable()) channel->thread.join();
  }
}

void ThreadedLoopback::attach(ProcessId id, Endpoint& endpoint) {
  auto channel = std::make_unique<WireChannel>();
  channel->thread = std::thread([c = channel.get()] { c->run(); });
  auto adapter = std::make_unique<WireAdapter>(*this, endpoint, *channel);
  // Attach last: if the inner network rejects (double attach), the channel
  // is torn down by our destructor like any other.
  channels_.push_back(std::move(channel));
  adapters_.push_back(std::move(adapter));
  inner_.attach(id, *adapters_.back());
}

void ThreadedLoopback::WireChannel::run() {
  std::deque<FramePtr> burst;
  std::vector<MessagePtr> fresh;
  for (;;) {
    burst.clear();
    {
      // Coalesced drain: swap the whole mailbox out under one lock
      // acquisition, so a burst of crossings costs one wakeup + two
      // critical sections instead of one pair per frame.
      std::unique_lock<std::mutex> lock(mutex);
      frame_ready.wait(lock, [this] { return stop || !frames.empty(); });
      if (stop && frames.empty()) return;
      burst.swap(frames);
    }
    fresh.clear();
    std::exception_ptr failure;
    for (const FramePtr& frame : burst) {
      try {
        // Decoded from bytes on this thread: the object handed back shares
        // nothing with whatever the sender queued.  The frame itself may be
        // shared with other destinations, but it is immutable — this thread
        // only reads it.
        fresh.push_back(Codec::decode(*frame));
      } catch (...) {
        failure = std::current_exception();
        break;
      }
    }
    {
      const std::lock_guard<std::mutex> lock(mutex);
      ++drains;
      for (MessagePtr& m : fresh) decoded.push_back(std::move(m));
      if (failure != nullptr) error = failure;
    }
    decode_done.notify_one();
  }
}

std::uint64_t ThreadedLoopback::wire_drains() const {
  std::uint64_t total = 0;
  for (const auto& channel : channels_) {
    const std::lock_guard<std::mutex> lock(channel->mutex);
    total += channel->drains;
  }
  return total;
}

MessagePtr ThreadedLoopback::WireChannel::round_trip(FramePtr frame) {
  std::unique_lock<std::mutex> lock(mutex);
  frames.push_back(std::move(frame));
  frame_ready.notify_one();
  decode_done.wait(lock,
                   [this] { return error != nullptr || !decoded.empty(); });
  if (error != nullptr) {
    const std::exception_ptr failure = std::exchange(error, nullptr);
    std::rethrow_exception(failure);
  }
  MessagePtr fresh = std::move(decoded.front());
  decoded.pop_front();
  return fresh;
}

bool ThreadedLoopback::WireAdapter::on_message(ProcessId from,
                                               const MessagePtr& message,
                                               Lane lane) {
  // Encode on the protocol thread (the sender's NIC) — once per message,
  // not per destination: shared_frame caches the buffer on the message, so
  // the other receivers of a multicast (and any retry of this one) reuse
  // it.  Codec::encode asserts the measured size against wire_size(), so
  // the byte counters of the link layer are the sizes of these very
  // buffers.  Decode happens on the receiver's wire thread.
  const bool cached = message->frame_cached();
  FramePtr frame = Codec::shared_frame(*message);
  ++(cached ? owner_.frame_reuses_ : owner_.frame_encodes_);
  ++owner_.wire_frames_;
  owner_.wire_bytes_ += frame->size();
  const MessagePtr fresh = channel_.round_trip(std::move(frame));
  SVS_ASSERT(fresh != nullptr && fresh.get() != message.get(),
             "the wire must hand back a distinct, freshly decoded object");
  return real_.on_message(from, fresh, lane);
}

}  // namespace svs::net
