// Wire codec: the single authority on how messages become bytes
// (DESIGN.md §6).
//
// Every MessageType the protocol sends has exactly one encoding: a one-byte
// type tag followed by a type-specific body of LEB128 varints, annotation
// encodings (obs/annotation.hpp) and length-framed blobs.  `wire_size()` is
// *defined* as the number of bytes this codec writes, and the codec asserts
// that equality at every encode site — the two can never drift, and every
// byte counter in NetworkStats is therefore a measurement, not an estimate.
//
// Extensibility mirrors the two open points of the format:
//
//   * application payloads (core::Payload) are framed as
//     [payload_kind varint][length varint][body] and dispatched through
//     PayloadCodecRegistry — kind 0 is the size-preserving opaque fallback,
//     positive kinds (workload::ItemOp, ...) round-trip exactly;
//   * consensus values (consensus::ValueBase) are framed the same way
//     through ValueCodecRegistry (core::ProposalValue is the built-in).
//
// Decoding is hardened for untrusted bytes: truncated varints, bad tags,
// unknown kinds, length overruns and garbage suffixes all throw
// util::ContractViolation — never UB (tests/codec_test.cpp fuzzes this).
// Decode is thread-safe after registration (the loopback backend decodes on
// per-process wire threads); register codecs before traffic flows.
#pragma once

#include <cstdint>

#include "consensus/value.hpp"
#include "core/message.hpp"
#include "net/message.hpp"
#include "util/bytes.hpp"

namespace svs::net {

/// payload_kind-keyed encode/decode registry for application payloads.
/// Plain function pointers: codecs are stateless by design.
class PayloadCodecRegistry {
 public:
  /// Must write exactly payload.wire_size() bytes (asserted by the codec).
  using Encode = void (*)(const core::Payload& payload, util::ByteWriter& w);
  /// Must consume exactly the framed length and return non-null; anything
  /// unparseable must throw util::ContractViolation.
  using Decode = core::PayloadPtr (*)(util::ByteReader& r);

  /// Registers (or replaces) the codec for `kind` (> 0; 0 is the opaque
  /// fallback).  Call before transport threads start.
  static void register_codec(std::uint32_t kind, Encode encode, Decode decode);

  [[nodiscard]] static bool registered(std::uint32_t kind);
};

/// value_kind-keyed registry for consensus values, same contract.
class ValueCodecRegistry {
 public:
  using Encode = void (*)(const consensus::ValueBase& value,
                          util::ByteWriter& w);
  using Decode = consensus::ValuePtr (*)(util::ByteReader& r);

  static void register_codec(std::uint32_t kind, Encode encode, Decode decode);

  [[nodiscard]] static bool registered(std::uint32_t kind);
};

class Codec {
 public:
  /// Appends the full encoding (tag + body) of `m` to `w`.  Asserts that
  /// exactly m.wire_size() bytes were written.  Throws ContractViolation
  /// for MessageType::other (test-only messages have no wire format) and
  /// for payload/value kinds without a registered codec.
  static void encode(const Message& m, util::ByteWriter& w);

  /// Convenience: `m` as a fresh byte buffer (the loopback wire frame).
  [[nodiscard]] static util::Bytes encode(const Message& m);

  /// Encode-once: the message's wire frame as a refcounted immutable
  /// buffer, encoded on first call and cached on the message — every
  /// destination, retry and injected duplicate of a multicast ships the
  /// same frame (DESIGN.md §8).  Byte-identical to encode(m) (the
  /// randomized equivalence test pins this).  Same thread-confinement
  /// contract as wire_size(): only the thread owning the message may call.
  [[nodiscard]] static FramePtr shared_frame(const Message& m);

  /// Decodes one message starting at the reader's position (used for
  /// nested messages; does not require the reader to end up exhausted).
  [[nodiscard]] static MessagePtr decode(util::ByteReader& r);

  /// Decodes a whole frame; a garbage suffix (bytes left over after the
  /// message) throws ContractViolation.
  [[nodiscard]] static MessagePtr decode(const util::Bytes& frame);
};

}  // namespace svs::net
