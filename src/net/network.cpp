#include "net/network.hpp"

#include <algorithm>
#include <utility>

namespace svs::net {

namespace {
constexpr int lane_index(Lane lane) { return lane == Lane::data ? 0 : 1; }
}  // namespace

Network::Network(sim::Simulator& simulator, Config config)
    : sim_(simulator), config_(config), rng_(config.seed) {
  SVS_REQUIRE(config_.delay >= sim::Duration::zero(), "delay must be >= 0");
  SVS_REQUIRE(config_.jitter >= sim::Duration::zero(), "jitter must be >= 0");
}

void Network::attach(ProcessId id, Endpoint& endpoint) {
  const auto [it, inserted] = endpoints_.emplace(id, &endpoint);
  (void)it;
  SVS_REQUIRE(inserted, "endpoint already attached for this process");
}

Network::Link& Network::link(ProcessId from, ProcessId to) {
  return links_[LinkKey{from, to}];
}

const Network::Link* Network::find_link(ProcessId from, ProcessId to) const {
  const auto it = links_.find(LinkKey{from, to});
  return it == links_.end() ? nullptr : &it->second;
}

void Network::send(ProcessId from, ProcessId to, MessagePtr message,
                   Lane lane) {
  SVS_REQUIRE(message != nullptr, "cannot send a null message");
  SVS_REQUIRE(endpoints_.contains(from), "sender not attached");
  SVS_REQUIRE(endpoints_.contains(to), "receiver not attached");
  if (crashed_.contains(from)) return;  // crash-stop: no sends after crash

  Link& l = link(from, to);
  sim::Duration delay = config_.delay + l.slowdown;
  if (config_.jitter > sim::Duration::zero()) {
    delay += sim::Duration::micros(static_cast<std::int64_t>(
        rng_.below(static_cast<std::uint64_t>(config_.jitter.as_micros()) + 1)));
  }
  // FIFO per lane: acceptance attempts never reorder.
  const int li = lane_index(lane);
  sim::TimePoint ready = sim_.now() + delay;
  if (ready < l.last_ready[li]) ready = l.last_ready[li];
  l.last_ready[li] = ready;
  l.queue[li].push_back(QueuedMessage{std::move(message), ready});
  ++stats_.sent;
  schedule_attempt(from, to, l, lane);
}

void Network::schedule_attempt(ProcessId from, ProcessId to, Link& l,
                               Lane lane) {
  const int li = lane_index(lane);
  if (l.pending[li].valid()) return;          // attempt already scheduled
  if (l.in_attempt[li]) return;  // the running attempt reschedules at exit
  if (lane == Lane::data && l.stalled) return;  // waiting for resume()
  if (l.queue[li].empty()) return;
  const sim::TimePoint when =
      std::max(sim_.now(), l.queue[li].front().ready);
  l.pending[li] = sim_.schedule_at(
      when, [this, from, to, lane] { attempt(from, to, lane); });
}

void Network::attempt(ProcessId from, ProcessId to, Lane lane) {
  Link& l = link(from, to);
  const int li = lane_index(lane);
  l.pending[li] = sim::EventId{};
  auto& q = l.queue[li];
  if (q.empty()) return;  // everything was purged meanwhile

  SVS_ASSERT(q.front().ready <= sim_.now(),
             "attempt ran before message was ready");

  // Per-link delivery timer: drain every message already due in this one
  // event instead of scheduling one event per message.  A burst of n
  // same-ready messages (the common case on heavy traces) costs one heap
  // operation instead of n.  The budget caps the drain at the occupancy on
  // entry so that zero-delay messages enqueued by the handlers below are
  // delivered by a fresh event.  Note the burst is offered back-to-back:
  // other same-timestamp events (a consumer tick, a deferred deliverable
  // callback) now run after the whole drain rather than between deliveries,
  // so a capacity-bounded receiver may refuse a message it would previously
  // have accepted post-consume — the refusal stalls the link and resolves
  // through the normal resume() path, so only timing shifts, not outcomes.
  std::size_t budget = q.size();
  l.in_attempt[li] = true;
  while (budget-- > 0 && !q.empty() && q.front().ready <= sim_.now()) {
    if (crashed_.contains(to)) {
      if (lane == Lane::control) {
        // Nobody will ever read it; discard so long runs do not accumulate.
        q.pop_front();
        ++stats_.dropped_to_crashed;
        continue;
      }
      // A reliable protocol keeps unacknowledged data buffered; the space
      // is only reclaimed when a view change excludes the crashed member
      // (drop_outgoing).  Model that as a permanent stall.
      l.stalled = true;
      ++stats_.refusals;
      break;
    }

    // Pop before delivering: the handler may send on this very link (e.g. a
    // consensus participant answering itself) or purge outgoing buffers; the
    // in-flight message must not be visible to either.  in_attempt
    // suppresses re-entrant scheduling; the epilogue below re-arms the link.
    QueuedMessage head = std::move(q.front());
    q.pop_front();
    Endpoint* endpoint = endpoints_.at(to);
    const bool accepted = endpoint->on_message(from, head.message, lane);

    if (lane == Lane::control) {
      SVS_ASSERT(accepted, "control-lane messages must always be accepted");
    }
    if (!accepted) {
      q.push_front(std::move(head));
      l.stalled = true;
      ++stats_.refusals;
      break;
    }
    ++stats_.delivered;
    if (lane == Lane::data) notify_drain(from);
  }
  l.in_attempt[li] = false;
  schedule_attempt(from, to, l, lane);
}

void Network::subscribe_backlog_drain(ProcessId from,
                                      std::function<void()> observer) {
  SVS_REQUIRE(observer != nullptr, "drain observer must be callable");
  drain_observers_[from].push_back(std::move(observer));
}

void Network::notify_drain(ProcessId from) {
  const auto it = drain_observers_.find(from);
  if (it == drain_observers_.end()) return;
  for (const auto& observer : it->second) observer();
}

void Network::crash(ProcessId id) {
  SVS_REQUIRE(endpoints_.contains(id), "unknown process");
  const auto [it, inserted] = crashed_.emplace(id, sim_.now());
  (void)it;
  if (!inserted) return;  // already crashed
  for (const auto& observer : crash_observers_) observer(id, sim_.now());
}

void Network::subscribe_crash(
    std::function<void(ProcessId, sim::TimePoint)> observer) {
  SVS_REQUIRE(observer != nullptr, "crash observer must be callable");
  crash_observers_.push_back(std::move(observer));
}

bool Network::is_crashed(ProcessId id) const { return crashed_.contains(id); }

std::optional<sim::TimePoint> Network::crash_time(ProcessId id) const {
  const auto it = crashed_.find(id);
  if (it == crashed_.end()) return std::nullopt;
  return it->second;
}

void Network::resume(ProcessId to) {
  for (auto& [key, l] : links_) {
    if (key.second != to || !l.stalled) continue;
    l.stalled = false;
    schedule_attempt(key.first, to, l, Lane::data);
  }
}

std::size_t Network::data_backlog(ProcessId from, ProcessId to) const {
  const Link* l = find_link(from, to);
  return l == nullptr ? 0 : l->queue[lane_index(Lane::data)].size();
}

std::size_t Network::erase_from_queue(
    Link& l, ProcessId from, ProcessId to,
    const std::function<bool(const MessagePtr&)>& victim,
    bool count_as_purged) {
  const int li = lane_index(Lane::data);
  auto& q = l.queue[li];
  const std::size_t before = q.size();
  const bool head_scheduled = l.pending[li].valid();
  const MessagePtr head = q.empty() ? nullptr : q.front().message;

  std::erase_if(q, [&](const QueuedMessage& qm) { return victim(qm.message); });

  const std::size_t removed = before - q.size();
  if (removed == 0) return 0;
  if (count_as_purged) stats_.purged_outgoing += removed;
  notify_drain(from);

  // If the scheduled head was removed, re-aim the attempt at the new head.
  const bool head_removed =
      head != nullptr && (q.empty() || q.front().message != head);
  if (head_scheduled && head_removed) {
    sim_.cancel(l.pending[li]);
    l.pending[li] = sim::EventId{};
    schedule_attempt(from, to, l, Lane::data);
  }
  return removed;
}

std::size_t Network::purge_outgoing(
    ProcessId from, const std::function<bool(const MessagePtr&)>& victim) {
  std::size_t total = 0;
  for (auto& [key, l] : links_) {
    if (key.first != from) continue;
    total += erase_from_queue(l, key.first, key.second, victim,
                              /*count_as_purged=*/true);
  }
  return total;
}

std::size_t Network::purge_outgoing_to(
    ProcessId from, ProcessId to,
    const std::function<bool(const MessagePtr&)>& victim) {
  const auto it = links_.find(LinkKey{from, to});
  if (it == links_.end()) return 0;
  return erase_from_queue(it->second, from, to, victim,
                          /*count_as_purged=*/true);
}

std::size_t Network::drop_outgoing(
    ProcessId from, const std::function<bool(const MessagePtr&)>& victim) {
  std::size_t total = 0;
  for (auto& [key, l] : links_) {
    if (key.first != from) continue;
    total += erase_from_queue(l, key.first, key.second, victim,
                              /*count_as_purged=*/false);
  }
  return total;
}

void Network::set_link_slowdown(ProcessId from, ProcessId to,
                                sim::Duration extra) {
  SVS_REQUIRE(extra >= sim::Duration::zero(), "slowdown must be >= 0");
  link(from, to).slowdown = extra;
}

}  // namespace svs::net
