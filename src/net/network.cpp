#include "net/network.hpp"

#include <utility>

#include "net/fault_injector.hpp"

namespace svs::net {

Network::Network(sim::Simulator& simulator, Config config)
    : sim_(simulator), config_(config), rng_(config.seed) {
  SVS_REQUIRE(config_.delay >= sim::Duration::zero(), "delay must be >= 0");
  SVS_REQUIRE(config_.jitter >= sim::Duration::zero(), "jitter must be >= 0");
}

void Network::attach(ProcessId id, Endpoint& endpoint) {
  SVS_REQUIRE(link_refs_held_ == 0,
              "attach re-strides the link table and must not run inside a "
              "delivery, purge or drain callback; defer it to its own event");
  const auto raw = static_cast<std::size_t>(id.value());
  if (raw >= dense_.size()) dense_.resize(raw + 1, -1);
  SVS_REQUIRE(dense_[raw] < 0, "endpoint already attached for this process");

  const std::uint32_t n_old = size();
  dense_[raw] = static_cast<std::int32_t>(n_old);
  endpoints_.push_back(&endpoint);
  pid_of_.push_back(id);
  crash_.emplace_back();
  pause_wakeup_.emplace_back();
  drain_observers_.emplace_back();
  // One empty row; its slots (and the short rows of earlier senders)
  // materialize on first use, so attach is O(1) at any group size.
  links_.emplace_back();
}

void Network::enqueue(std::uint32_t fi, std::uint32_t ti, Link& l,
                      MessagePtr message, Lane lane,
                      std::size_t wire_bytes) {
  // Fault injection first: the hook may add delay (jitter, partitions held
  // until heal), duplicate the message, or — out-of-model — drop it before
  // it ever enters the link queue.
  std::uint32_t copies = 1;
  sim::Duration injected = sim::Duration::zero();
  if (injector_ != nullptr) {
    const FaultInjector::SendFault fault =
        injector_->on_send(pid_of_[fi], pid_of_[ti], lane, *message,
                           sim_.now());
    if (fault.copies == 0) {
      ++stats_.injected_drops;
      return;  // never enqueued: counts neither as sent nor as bytes
    }
    copies = fault.copies;
    stats_.injected_duplicates += copies - 1;
    stats_.injected_losses += fault.losses;
    injected = fault.extra_delay;
  }

  const int li = lane_index(lane);
  const std::uint64_t key = message->order_key();
  // Countdown so the last copy moves the pointer: the single-copy case —
  // the entire hot path — never pays a refcount bump here.
  for (std::uint32_t c = copies; c-- > 0;) {
    sim::Duration delay = config_.delay + l.slowdown + injected;
    if (config_.jitter > sim::Duration::zero()) {
      delay += sim::Duration::micros(static_cast<std::int64_t>(rng_.below(
          static_cast<std::uint64_t>(config_.jitter.as_micros()) + 1)));
    }
    // FIFO per lane: acceptance attempts never reorder.
    sim::TimePoint ready = sim_.now() + delay;
    if (ready < l.last_ready[li]) ready = l.last_ready[li];
    l.last_ready[li] = ready;
    // Duplicated copies are real wire traffic: each counts sent bytes.
    l.queue[li].push_back(QueuedMessage{
        c == 0 ? std::move(message) : MessagePtr(message), ready, key});
    ++stats_.sent;
    stats_.bytes_sent += wire_bytes;
  }
  schedule_attempt(fi, ti, l, lane);
}

void Network::send(ProcessId from, ProcessId to, MessagePtr message,
                   Lane lane) {
  SVS_REQUIRE(message != nullptr, "cannot send a null message");
  const std::uint32_t fi = index_of(from);
  const std::uint32_t ti = index_of(to);
  if (crash_[fi].crashed) return;  // crash-stop: no sends after crash
  const std::size_t wire_bytes = message->wire_size();
  enqueue(fi, ti, link_at(fi, ti), std::move(message), lane, wire_bytes);
}

void Network::multicast(ProcessId from,
                        std::span<const ProcessId> destinations,
                        const MessagePtr& message, Lane lane, bool skip_self) {
  SVS_REQUIRE(message != nullptr, "cannot send a null message");
  const std::uint32_t fi = index_of(from);
  if (crash_[fi].crashed) return;
  // One encode-size computation for the whole fan-out: every destination
  // receives the same bytes.
  const std::size_t wire_bytes = message->wire_size();
  for (const ProcessId to : destinations) {
    if (skip_self && to == from) continue;
    const std::uint32_t ti = index_of(to);
    enqueue(fi, ti, link_at(fi, ti), MessagePtr(message), lane, wire_bytes);
  }
}

void Network::schedule_attempt(std::uint32_t fi, std::uint32_t ti, Link& l,
                               Lane lane) {
  const int li = lane_index(lane);
  if (l.pending[li].valid()) return;          // attempt already scheduled
  if (l.in_attempt[li]) return;  // the running attempt reschedules at exit
  if (lane == Lane::data && l.stalled) return;  // waiting for resume()
  if (l.queue[li].empty()) return;
  const sim::TimePoint when =
      std::max(sim_.now(), l.queue[li].front().ready);
  l.pending[li] = sim_.schedule_at(
      when, [this, fi, ti, lane] { attempt(fi, ti, lane); });
}

void Network::attempt(std::uint32_t fi, std::uint32_t ti, Lane lane) {
  const LinkRefScope scope(*this);
  Link& l = link_at(fi, ti);  // an attempt implies the link exists
  const int li = lane_index(lane);
  l.pending[li] = sim::EventId{};
  auto& q = l.queue[li];
  if (q.empty()) return;  // everything was purged meanwhile

  SVS_ASSERT(q.front().ready <= sim_.now(),
             "attempt ran before message was ready");

  // Injected receiver pause (slow-consumer throttling, fault_injector.hpp):
  // the receiver refuses data for the window, so the link stalls exactly as
  // it would on a full delivery queue — backpressure, not loss.  One wake-up
  // per receiver re-attempts at the window's end.  Control-lane traffic is
  // never paused (§5.3 reserves buffer space for control information).
  if (lane == Lane::data && injector_ != nullptr) {
    const auto until =
        injector_->receive_paused_until(pid_of_[ti], sim_.now());
    if (until.has_value()) {
      l.stalled = true;
      ++stats_.injected_pauses;
      arm_pause_wakeup(ti, *until);
      return;
    }
  }

  // Per-link delivery timer: drain every message already due in this one
  // event instead of scheduling one event per message.  A burst of n
  // same-ready messages (the common case on heavy traces) costs one heap
  // operation instead of n.  The budget caps the drain at the occupancy on
  // entry so that zero-delay messages enqueued by the handlers below are
  // delivered by a fresh event.  Note the burst is offered back-to-back:
  // other same-timestamp events (a consumer tick, a deferred deliverable
  // callback) now run after the whole drain rather than between deliveries,
  // so a capacity-bounded receiver may refuse a message it would previously
  // have accepted post-consume — the refusal stalls the link and resolves
  // through the normal resume() path, so only timing shifts, not outcomes.
  std::size_t budget = q.size();
  l.in_attempt[li] = true;
  const ProcessId from = pid_of_[fi];
  Endpoint* const endpoint = endpoints_[ti];
  while (budget-- > 0 && !q.empty() && q.front().ready <= sim_.now()) {
    if (crash_[ti].crashed) {
      if (lane == Lane::control) {
        // Nobody will ever read it; discard so long runs do not accumulate.
        q.pop_front();
        ++stats_.dropped_to_crashed;
        continue;
      }
      // A reliable protocol keeps unacknowledged data buffered; the space
      // is only reclaimed when a view change excludes the crashed member
      // (drop_outgoing).  Model that as a permanent stall.
      l.stalled = true;
      ++stats_.refusals;
      break;
    }

    // Pop before delivering: the handler may send on this very link (e.g. a
    // consensus participant answering itself) or purge outgoing buffers; the
    // in-flight message must not be visible to either.  in_attempt
    // suppresses re-entrant scheduling; the epilogue below re-arms the link.
    QueuedMessage head = std::move(q.front());
    q.pop_front();
    const bool accepted = endpoint->on_message(from, head.message, lane);

    if (lane == Lane::control) {
      SVS_ASSERT(accepted, "control-lane messages must always be accepted");
    }
    if (!accepted) {
      q.push_front(std::move(head));
      l.stalled = true;
      ++stats_.refusals;
      break;
    }
    ++stats_.delivered;
    stats_.bytes_delivered += head.message->wire_size();
    if (lane == Lane::data) notify_drain(fi);
  }
  l.in_attempt[li] = false;
  schedule_attempt(fi, ti, l, lane);
}

void Network::arm_pause_wakeup(std::uint32_t ti, sim::TimePoint until) {
  if (pause_wakeup_[ti] >= until) return;  // already armed for this window
  pause_wakeup_[ti] = until;
  sim_.schedule_at(until, [this, ti] {
    // An overlapping later window may have re-armed past this event; keep
    // the mark then (a still-paused receiver just re-stalls on re-attempt).
    if (pause_wakeup_[ti] <= sim_.now()) pause_wakeup_[ti] = sim::TimePoint{};
    resume(pid_of_[ti]);
  });
}

void Network::subscribe_backlog_drain(ProcessId from,
                                      std::function<void()> observer) {
  SVS_REQUIRE(observer != nullptr, "drain observer must be callable");
  drain_observers_[index_of(from)].push_back(std::move(observer));
}

void Network::notify_drain(std::uint32_t fi) {
  for (const auto& observer : drain_observers_[fi]) observer();
}

void Network::crash(ProcessId id) {
  CrashRecord& record = crash_[index_of(id)];
  if (record.crashed) return;  // already crashed
  record.crashed = true;
  record.at = sim_.now();
  for (const auto& observer : crash_observers_) observer(id, sim_.now());
}

void Network::subscribe_crash(
    std::function<void(ProcessId, sim::TimePoint)> observer) {
  SVS_REQUIRE(observer != nullptr, "crash observer must be callable");
  crash_observers_.push_back(std::move(observer));
}

bool Network::is_crashed(ProcessId id) const {
  const auto idx = find_index(id);
  return idx.has_value() && crash_[*idx].crashed;
}

std::optional<sim::TimePoint> Network::crash_time(ProcessId id) const {
  const auto idx = find_index(id);
  if (!idx.has_value() || !crash_[*idx].crashed) return std::nullopt;
  return crash_[*idx].at;
}

void Network::resume(ProcessId to) {
  const std::uint32_t ti = index_of(to);
  const std::uint32_t n = size();
  for (std::uint32_t fi = 0; fi < n; ++fi) {
    Link* const l = peek_link(fi, ti);
    if (l == nullptr || !l->stalled) continue;
    l->stalled = false;
    schedule_attempt(fi, ti, *l, Lane::data);
  }
}

std::size_t Network::data_backlog(ProcessId from, ProcessId to) const {
  const auto fi = find_index(from);
  const auto ti = find_index(to);
  if (!fi.has_value() || !ti.has_value()) return 0;
  const Link* const l = peek_link(*fi, *ti);
  return l == nullptr ? 0 : l->queue[lane_index(Lane::data)].size();
}

void Network::reaim_if_head_removed(Link& l, std::uint32_t fi,
                                    std::uint32_t ti, bool head_scheduled,
                                    const Message* old_head) {
  const int li = lane_index(Lane::data);
  auto& q = l.queue[li];
  const bool head_removed =
      old_head != nullptr && (q.empty() || q.front().message.get() != old_head);
  if (head_scheduled && head_removed) {
    sim_.cancel(l.pending[li]);
    l.pending[li] = sim::EventId{};
    schedule_attempt(fi, ti, l, Lane::data);
  }
}

void Network::set_link_slowdown(ProcessId from, ProcessId to,
                                sim::Duration extra) {
  SVS_REQUIRE(extra >= sim::Duration::zero(), "slowdown must be >= 0");
  link_at(index_of(from), index_of(to)).slowdown = extra;
}

}  // namespace svs::net
