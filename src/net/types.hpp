// Basic identifiers shared by every protocol layer.
#pragma once

#include <cstdint>

#include "util/strong_id.hpp"

namespace svs::net {

struct ProcessIdTag {
  static constexpr const char* prefix() { return "p"; }
};

/// Identity of a process (group member / simulated node).
using ProcessId = util::StrongId<ProcessIdTag, std::uint32_t>;

}  // namespace svs::net
