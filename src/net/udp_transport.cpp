#include "net/udp_transport.hpp"

#include <time.h>

#include <algorithm>
#include <limits>
#include <string>

#include "metrics/stats.hpp"
#include "net/codec.hpp"
#include "net/fault_injector.hpp"
#include "sim/fault_plan.hpp"
#include "util/contracts.hpp"

namespace svs::net {
namespace {

constexpr std::uint8_t lane_byte_of(Lane lane) {
  return lane == Lane::data ? 0 : 1;
}

constexpr Lane lane_of(std::uint8_t lane_byte) {
  return lane_byte == 0 ? Lane::data : Lane::control;
}

/// Pacing of zero-window probes (real time): fast enough that a reopened
/// receiver resumes promptly, slow enough not to flood a stalled one.
constexpr std::int64_t kProbeIntervalUs = 100'000;

/// Retry cadence when the kernel blocks a send-queue flush (ENOBUFS /
/// EAGAIN): short — loopback send buffers drain in microseconds.
constexpr std::int64_t kSendRetryUs = 200;

/// All-local service cadence: every this-many shadow crossings the
/// transport takes a service turn even if no wheel deadline is due, so the
/// shadow wire keeps pace with a hot crossing loop.
constexpr std::uint64_t kServiceEvery = 32;

/// A shadow crossing blocked on window space gives up after this much real
/// time without progress — a wedged shadow wire is a harness bug, not a
/// protocol state.
constexpr std::int64_t kShadowStallBudgetUs = 10'000'000;

/// Wheel payload packing: kind(4) | proc index(16) | peer(32) | lane(8).
enum : std::uint64_t {
  kTimerRetx = 1,
  kTimerBatch = 2,
  kTimerProbe = 3,
  kTimerSendq = 4,
};

constexpr std::uint64_t timer_payload(std::uint64_t kind, std::size_t proc,
                                      std::uint32_t peer, std::uint8_t lane) {
  return (kind << 60) | ((static_cast<std::uint64_t>(proc) & 0xFFFF) << 44) |
         (static_cast<std::uint64_t>(peer) << 12) |
         (static_cast<std::uint64_t>(lane) << 4);
}

/// Encoded cost of one batched frame: its bytes plus its length varint.
constexpr std::size_t frame_cost(std::size_t frame_bytes) {
  std::size_t varint = 1;
  for (std::uint64_t v = frame_bytes; v >= 0x80; v >>= 7) ++varint;
  return frame_bytes + varint;
}

}  // namespace

// ---------------------------------------------------------------------------
// DatagramLossModel

void DatagramLossModel::set_link_rate(std::uint32_t from, std::uint32_t to,
                                      double rate) {
  SVS_REQUIRE(rate >= 0.0 && rate < 1.0, "loss rate out of [0, 1)");
  const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
  links_[key].rate = rate;
}

bool DatagramLossModel::drop(std::uint32_t from, std::uint32_t to) {
  const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
  const auto it = links_.find(key);
  const double rate =
      (it != links_.end() && it->second.rate) ? *it->second.rate : default_rate_;
  if (rate <= 0.0) return false;
  LinkState& state = links_[key];
  if (!state.rng) state.rng = sim::Rng::stream(seed_, key);
  return state.rng->chance(rate);
}

// ---------------------------------------------------------------------------
// ReliableLink

namespace {

/// RTO with +/- 25% jitter, so synchronized links desynchronize their
/// retransmission bursts.
std::int64_t jittered(sim::Rng& rng, std::int64_t rto_us) {
  const std::int64_t quarter = rto_us / 4;
  return rto_us - quarter +
         static_cast<std::int64_t>(
             rng.below(static_cast<std::uint64_t>(2 * quarter + 1)));
}

}  // namespace

std::uint64_t ReliableLink::stage(FramePtr frame, std::int64_t now_us) {
  std::vector<FramePtr> batch;
  batch.push_back(std::move(frame));
  return stage(std::move(batch), now_us);
}

std::uint64_t ReliableLink::stage(std::vector<FramePtr> frames,
                                  std::int64_t now_us) {
  SVS_REQUIRE(!dead_, "staging a batch on a dead link");
  SVS_REQUIRE(!frames.empty() &&
                  frames.size() <= Datagram::kMaxBatchFrames,
              "batch size out of bounds");
  InFlight f;
  f.seq = next_seq_++;
  f.frames = std::move(frames);
  f.rto_us = config_.rto_base_us;
  f.deadline_us = now_us + jittered(rng_, f.rto_us);
  in_flight_frames_ += f.frames.size();
  in_flight_.push_back(std::move(f));
  return in_flight_.back().seq;
}

const std::vector<FramePtr>* ReliableLink::frames_of(std::uint64_t seq) const {
  for (const InFlight& f : in_flight_) {
    if (f.seq == seq) return &f.frames;
  }
  return nullptr;
}

std::int64_t ReliableLink::next_deadline() const {
  std::int64_t earliest = std::numeric_limits<std::int64_t>::max();
  for (const InFlight& f : in_flight_) {
    earliest = std::min(earliest, f.deadline_us);
  }
  return earliest;
}

void ReliableLink::collect_due(std::int64_t now_us,
                               std::vector<std::uint64_t>& due) {
  for (InFlight& f : in_flight_) {
    if (f.deadline_us > now_us) continue;
    if (f.retries >= config_.max_retries) {
      // Retry budget exhausted: presume the peer crashed.  Drop the window —
      // these frames can only reach a process the membership layer is about
      // to exclude.
      dead_ = true;
      ++stats_.link_resets;
      in_flight_.clear();
      in_flight_frames_ = 0;
      due.clear();
      return;
    }
    ++f.retries;
    f.rto_us = std::min(f.rto_us * 2, config_.rto_max_us);
    f.deadline_us = now_us + jittered(rng_, f.rto_us);
    ++stats_.retransmissions;
    due.push_back(f.seq);
  }
}

void ReliableLink::on_ack(const AckBlock& ack) {
  peer_window_ = ack.window;
  while (!in_flight_.empty() && in_flight_.front().seq <= ack.cum) {
    in_flight_frames_ -= in_flight_.front().frames.size();
    in_flight_.pop_front();
  }
  if (ack.sacks.empty() || in_flight_.empty()) return;
  std::erase_if(in_flight_, [this, &ack](const InFlight& f) {
    for (const AckBlock::Range& r : ack.sacks) {
      if (f.seq >= r.first && f.seq <= r.last) {
        in_flight_frames_ -= f.frames.size();
        return true;
      }
    }
    return false;
  });
}

bool ReliableLink::accept(std::uint64_t seq,
                          std::vector<util::Bytes> payloads) {
  SVS_REQUIRE(seq >= 1, "link sequence numbers start at 1");
  if (seq <= cum_ || out_of_order_.contains(seq)) {
    ++stats_.duplicate_drops;
    return false;
  }
  out_of_order_.emplace(seq, std::move(payloads));
  // Drain the run now contiguous with the frontier; batches flatten into
  // the ready queue in (batch seq, in-batch) order.
  for (auto it = out_of_order_.begin();
       it != out_of_order_.end() && it->first == cum_ + 1;
       it = out_of_order_.erase(it)) {
    for (util::Bytes& payload : it->second) {
      ready_.emplace_back(it->first, std::move(payload));
    }
    ++cum_;
  }
  return true;
}

bool ReliableLink::next_ready(std::uint64_t& seq, util::Bytes& payload) {
  if (ready_.empty()) return false;
  seq = ready_.front().first;
  payload = std::move(ready_.front().second);
  ready_.pop_front();
  return true;
}

AckBlock ReliableLink::ack_state(std::uint32_t window) const {
  AckBlock ack;
  ack.cum = cum_;
  ack.window = window;
  // Contiguous out-of-order keys merge into ranges; std::map iteration is
  // ascending, and every key is >= cum_ + 2 (cum_ + 1 would have drained),
  // so the encoder's canonical-form requirement holds by construction.
  for (const auto& [seq, bytes] : out_of_order_) {
    if (!ack.sacks.empty() && ack.sacks.back().last + 1 == seq) {
      ack.sacks.back().last = seq;
    } else {
      if (ack.sacks.size() == Datagram::kMaxSackRanges) break;
      ack.sacks.push_back(AckBlock::Range{seq, seq});
    }
  }
  return ack;
}

// ---------------------------------------------------------------------------
// UdpTransport

UdpTransport::UdpTransport(sim::Simulator& simulator, Config config)
    : inner_(simulator, config.network), config_(config),
      loss_(config.lane_seed), wheel_(1) {
  loss_.set_default_rate(config.loss_rate);
  // Seat the wheel cursor at the present so the first real arm is a direct
  // placement instead of a multi-level cascade walk from tick 0.
  wheel_.advance(static_cast<std::uint64_t>(mono_us()),
                 [](std::uint64_t) {});
  if (config_.bind_local) {
    distributed_ = true;
    procs_.push_back(std::make_unique<Proc>(config_.bind_port));
    procs_.front()->socket.set_use_mmsg(config_.use_mmsg);
    if (config_.rcvbuf_bytes > 0) {
      procs_.front()->socket.set_rcvbuf(config_.rcvbuf_bytes);
    }
  }
}

void UdpTransport::attach(ProcessId id, Endpoint& endpoint) {
  if (distributed_) {
    Proc& p = *procs_.front();
    SVS_REQUIRE(p.real == nullptr,
                "distributed mode hosts exactly one local process");
    p.id = id;
    p.real = &endpoint;
    proc_index_[id.value()] = 0;
    // The real endpoint is registered with the inner network directly:
    // self-sends stay entirely in-memory (virtual loopback link), exactly
    // like the other backends.
    inner_.attach(id, endpoint);
    return;
  }
  SVS_REQUIRE(!proc_index_.contains(id.value()), "process already attached");
  auto proc = std::make_unique<Proc>(std::uint16_t{0});
  proc->socket.set_use_mmsg(config_.use_mmsg);
  if (config_.rcvbuf_bytes > 0) proc->socket.set_rcvbuf(config_.rcvbuf_bytes);
  proc->id = id;
  proc->real = &endpoint;
  proc->index = procs_.size();
  proc_index_[id.value()] = procs_.size();
  procs_.push_back(std::move(proc));
  adapters_.push_back(std::make_unique<LocalAdapter>(*this, procs_.size() - 1));
  inner_.attach(id, *adapters_.back());
}

void UdpTransport::add_peer(ProcessId id, std::uint16_t port) {
  SVS_REQUIRE(distributed_, "add_peer requires bind_local mode");
  SVS_REQUIRE(port != 0, "peer port must be non-zero");
  SVS_REQUIRE(!peer_ports_.contains(id.value()), "peer already added");
  peer_ports_[id.value()] = port;
  proxies_.push_back(std::make_unique<RemoteProxy>(*this, id));
  inner_.attach(id, *proxies_.back());
}

std::uint16_t UdpTransport::local_port(ProcessId id) const {
  if (distributed_) return procs_.front()->socket.port();
  const Proc* p = find_proc(id.value());
  SVS_REQUIRE(p != nullptr, "process not hosted by this transport");
  return p->socket.port();
}

UdpSocket& UdpTransport::socket_of(ProcessId id) {
  if (distributed_) return procs_.front()->socket;
  return proc_of(id).socket;
}

bool UdpTransport::links_idle() const {
  for (const auto& p : procs_) {
    for (const auto& [key, link] : p->links) {
      if (!link->all_acked()) return false;
    }
    for (const auto& [key, batch] : p->pending) {
      if (!batch.frames.empty()) return false;
    }
    if (!p->sendq.empty()) return false;
    for (const auto& [key, fifo] : p->expected) {
      if (!fifo.empty()) return false;
    }
  }
  return true;
}

UdpLaneStats UdpTransport::lane_stats() const {
  UdpLaneStats s = lane_stats_;
  for (const auto& p : procs_) {
    const IoCounters& io = p->socket.io_counters();
    s.syscalls_sent += io.send_syscalls;
    s.syscalls_recvd += io.recv_syscalls;
    s.mmsg_sends += io.mmsg_sends;
    s.mmsg_recvs += io.mmsg_recvs;
    s.single_sends += io.single_sends;
    s.single_recvs += io.single_recvs;
    s.send_queue_drops += p->sendq.overflow_drops();
  }
  s.wheel_cascades = wheel_.cascades();
  return s;
}

void UdpTransport::resume(ProcessId to) {
  if (distributed_ && !procs_.empty() && procs_.front()->real != nullptr &&
      procs_.front()->id == to) {
    // The local node freed buffer space: drain frames parked by inbound
    // backpressure, then re-advertise the reopened window to each sender.
    Proc& p = *procs_.front();
    for (auto& [peer, parked] : p.stalled) {
      if (parked.empty()) continue;
      while (!parked.empty() &&
             p.real->on_message(ProcessId(peer), parked.front(), Lane::data)) {
        parked.pop_front();
      }
      send_ack(p, peer, lane_byte_of(Lane::data));
    }
    flush_sendq(p);
  }
  inner_.resume(to);
}

void UdpTransport::set_fault_injector(FaultInjector* injector) {
  inner_.set_fault_injector(injector);
  // The planned injector models loss recovery in virtual time identically
  // on every backend; this backend additionally realizes the loss as real
  // datagram drops recovered by real retransmissions.
  if (const auto* planned = dynamic_cast<PlannedFaultInjector*>(injector)) {
    for (const sim::FaultSpec& f : planned->plan().faults) {
      if (f.kind != sim::FaultKind::loss) continue;
      if (f.a == sim::FaultSpec::kAllLinks) {
        loss_.set_default_rate(f.probability);
      } else {
        loss_.set_link_rate(f.a, f.b, f.probability);
      }
    }
  }
}

std::int64_t UdpTransport::mono_us() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000 +
         ts.tv_nsec / 1'000;
}

UdpTransport::Proc& UdpTransport::proc_of(ProcessId id) {
  const auto it = proc_index_.find(id.value());
  SVS_REQUIRE(it != proc_index_.end(), "process not hosted by this transport");
  return *procs_[it->second];
}

const UdpTransport::Proc* UdpTransport::find_proc(std::uint32_t raw_id) const {
  const auto it = proc_index_.find(raw_id);
  return it == proc_index_.end() ? nullptr : procs_[it->second].get();
}

std::uint16_t UdpTransport::port_of(std::uint32_t raw_id) const {
  if (const Proc* p = find_proc(raw_id)) return p->socket.port();
  const auto it = peer_ports_.find(raw_id);
  SVS_REQUIRE(it != peer_ports_.end(), "unknown datagram peer");
  return it->second;
}

ReliableLink& UdpTransport::link_for(Proc& p, std::uint32_t peer,
                                     std::uint8_t lane) {
  const LinkKey key{peer, lane};
  auto it = p.links.find(key);
  if (it == p.links.end()) {
    // Stable per-(endpoint, peer, lane) jitter stream: link creation order
    // never reshuffles another link's RTO jitter.
    const std::uint64_t stream =
        (static_cast<std::uint64_t>(p.id.value()) << 33) ^
        (static_cast<std::uint64_t>(peer) << 1) ^ lane;
    it = p.links
             .emplace(key, std::make_unique<ReliableLink>(
                               config_.link,
                               sim::Rng::stream(config_.lane_seed, stream),
                               lane_stats_))
             .first;
  }
  return *it->second;
}

std::uint32_t UdpTransport::advertised_window(const Proc& p,
                                              std::uint32_t peer) const {
  // All-local shadow traffic is verified, not delivered, so the receiver
  // never parks frames; the full window is always open.
  if (!distributed_) return config_.link.window;
  std::size_t parked = 0;
  if (const auto it = p.stalled.find(peer); it != p.stalled.end()) {
    parked = it->second.size();
  }
  const std::uint32_t window = config_.link.window;
  return parked >= window ? 0
                          : window - static_cast<std::uint32_t>(parked);
}

bool UdpTransport::shadow_cross(ProcessId from, std::size_t to_index,
                                const MessagePtr& message, Lane lane) {
  Proc& receiver = *procs_[to_index];
  Proc& sender = proc_of(from);
  const std::uint8_t lane_byte = lane_byte_of(lane);
  const LinkKey key{receiver.id.value(), lane_byte};
  ReliableLink& link = link_for(sender, receiver.id.value(), lane_byte);

  const bool cached = message->frame_cached();
  FramePtr frame = Codec::shared_frame(*message);
  ++(cached ? lane_stats_.frame_reuses : lane_stats_.frame_encodes);

  // The verdict is computed synchronously in memory from the SAME encoded
  // bytes the wire will carry: the receiver sees a message decoded from
  // `frame`, exactly as the loopback backend's wire crossing does, so
  // protocol histories stay bit-identical across backends.  Nested
  // crossings triggered by this delivery recurse through here and complete
  // before we stage our own frame — FIFO per link holds because the
  // recursion happens before this crossing touches the link.
  MessagePtr fresh = Codec::decode(*frame);
  const bool accepted = receiver.real->on_message(from, fresh, lane);

  // Shadow wire: the frame still crosses the kernel — batched, staged on
  // the reliable link, lost/retransmitted/acked in real time — and the
  // receiver byte-verifies it against this FIFO in deliver_ready().
  SVS_ASSERT(!link.dead(), "all-local reliable link exhausted its retries");
  std::size_t batched = 0;
  if (const auto it = sender.pending.find(key); it != sender.pending.end()) {
    batched = it->second.frames.size();
  }
  if (link.send_room() <= batched) {
    // Window full (counting frames batched but not yet staged): service the
    // shadow wire until acks open room.  This throttles only the shadow
    // traffic — the protocol already has its verdict.
    const std::int64_t start = mono_us();
    for (;;) {
      service_once(1'000);
      SVS_ASSERT(!link.dead(),
                 "all-local reliable link exhausted its retries");
      batched = 0;
      if (const auto it = sender.pending.find(key);
          it != sender.pending.end()) {
        batched = it->second.frames.size();
      }
      if (link.send_room() > batched) break;
      SVS_ASSERT(mono_us() - start < kShadowStallBudgetUs,
                 "shadow crossing made no window progress");
    }
  }
  receiver.expected[LinkKey{from.value(), lane_byte}].push_back(frame);
  if (config_.batch_bytes == 0) {
    const std::uint64_t seq = link.stage(std::move(frame), mono_us());
    transmit(sender, receiver.id.value(), lane_byte, link, seq);
  } else {
    batch_frame(sender, key, std::move(frame));
  }

  // Service cadence: a full transport turn (sockets drained, timers fired)
  // every kServiceEvery crossings keeps the shadow wire flowing without a
  // recvmmsg per crossing.  In between, a due wheel deadline only needs its
  // timers fired and the resulting datagrams flushed — batch-flush and retx
  // timers transmit, they never require an inbound pump — so the cheap path
  // skips the per-socket recv syscalls entirely.
  ++crossings_;
  if (crossings_ % kServiceEvery == 0) {
    service_once(0);
  } else if (wheel_.next_deadline_us() <=
             static_cast<std::uint64_t>(mono_us())) {
    pump_wheel(mono_us());
    for (const auto& q : procs_) flush_sendq(*q);
  }
  return accepted;
}

bool UdpTransport::async_send(ProcessId from, ProcessId peer,
                              const MessagePtr& message, Lane lane) {
  Proc& p = proc_of(from);
  const std::uint8_t lane_byte = lane_byte_of(lane);
  const LinkKey key{peer.value(), lane_byte};
  ReliableLink& link = link_for(p, peer.value(), lane_byte);
  if (link.dead()) {
    // The peer was declared crashed (and crash-stopped in the inner
    // network); stragglers racing that declaration are swallowed exactly
    // like sends to a crashed sim process.
    if (const auto it = p.pending.find(key); it != p.pending.end()) {
      wheel_.cancel(it->second.timer);
      p.pending.erase(it);
    }
    return true;
  }
  std::size_t pending_frames = 0;
  if (const auto it = p.pending.find(key); it != p.pending.end()) {
    pending_frames = it->second.frames.size();
  }
  if (lane == Lane::data && link.send_room() <= pending_frames) {
    // Window full (counting frames already batched but not yet staged):
    // refuse, which stalls the inner link head — the standard data-lane
    // backpressure.  Probe pacing is only needed when the *link* window is
    // closed; a batch-occupancy stall resolves at the flush deadline.
    if (!link.can_send()) arm_probe(p, peer.value(), mono_us());
    return false;
  }
  const bool cached = message->frame_cached();
  FramePtr frame = Codec::shared_frame(*message);
  ++(cached ? lane_stats_.frame_reuses : lane_stats_.frame_encodes);
  if (config_.batch_bytes == 0) {
    const std::uint64_t seq = link.stage(std::move(frame), mono_us());
    transmit(p, peer.value(), lane_byte, link, seq);
    flush_sendq(p);
    return true;
  }
  batch_frame(p, key, std::move(frame));
  return true;
}

void UdpTransport::batch_frame(Proc& p, const LinkKey& key, FramePtr frame) {
  // Per-destination batching: coalesce into the (peer, lane) batch; flush
  // first if this frame would overflow the byte budget or the frame cap.
  const std::size_t cost = frame_cost(frame->size());
  if (const auto it = p.pending.find(key);
      it != p.pending.end() && !it->second.frames.empty() &&
      (it->second.bytes + cost > config_.batch_bytes ||
       it->second.frames.size() >= Datagram::kMaxBatchFrames)) {
    flush_batch(p, key);
  }
  Proc::PendingBatch& batch = p.pending[key];
  if (batch.frames.empty()) {
    batch.timer = wheel_.arm(
        static_cast<std::uint64_t>(mono_us() + config_.batch_delay_us),
        timer_payload(kTimerBatch, p.index, key.first, key.second));
  }
  batch.frames.push_back(std::move(frame));
  batch.bytes += cost;
  if (batch.bytes >= config_.batch_bytes ||
      batch.frames.size() >= Datagram::kMaxBatchFrames) {
    flush_batch(p, key);
  }
}

void UdpTransport::flush_batch(Proc& p, const LinkKey& key) {
  const auto it = p.pending.find(key);
  if (it == p.pending.end()) return;
  wheel_.cancel(it->second.timer);  // no-op when the timer just fired
  std::vector<FramePtr> frames = std::move(it->second.frames);
  p.pending.erase(it);
  if (frames.empty()) return;
  ReliableLink& link = link_for(p, key.first, key.second);
  if (link.dead()) return;  // peer died while the batch was open: swallow
  ++lane_stats_.batch_flushes;
  metrics::counters::note_batch_flush();
  if (frames.size() >= 2) {
    lane_stats_.frames_batched += frames.size();
    metrics::counters::note_frames_batched(frames.size());
  }
  const std::uint64_t seq = link.stage(std::move(frames), mono_us());
  transmit(p, key.first, key.second, link, seq);
}

void UdpTransport::transmit(Proc& p, std::uint32_t peer, std::uint8_t lane,
                            ReliableLink& link, std::uint64_t seq) {
  const std::vector<FramePtr>* frames = link.frames_of(seq);
  SVS_ASSERT(frames != nullptr && !frames->empty(),
             "transmitting a retired batch");
  // Piggyback the reverse direction's ack state on every data datagram.
  ReliableLink& reverse = link_for(p, peer, lane);
  const AckBlock ack = reverse.ack_state(advertised_window(p, peer));
  util::Bytes bytes = Datagram::encode_data(
      p.id.value(), peer, lane, seq, ack,
      std::span<const FramePtr>(frames->data(), frames->size()));
  send_datagram(p, peer, std::move(bytes), /*is_ack=*/false);
  schedule_retx(p, LinkKey{peer, lane}, link);
}

void UdpTransport::send_ack(Proc& p, std::uint32_t peer, std::uint8_t lane,
                            bool probe) {
  ReliableLink& link = link_for(p, peer, lane);
  AckBlock ack = link.ack_state(advertised_window(p, peer));
  ack.window_probe = probe;
  if (probe) ++lane_stats_.zero_window_probes;
  util::Bytes bytes = Datagram::encode_ack(p.id.value(), peer, lane, ack);
  send_datagram(p, peer, std::move(bytes), /*is_ack=*/true);
}

void UdpTransport::send_datagram(Proc& p, std::uint32_t peer,
                                 util::Bytes bytes, bool is_ack) {
  // The loss draw happens at enqueue time so each directed link's stream
  // is consumed in transmit order, independent of kernel pacing.
  if (loss_.drop(p.id.value(), peer)) {
    ++lane_stats_.injected_losses;
    return;
  }
  ++lane_stats_.datagrams_sent;
  lane_stats_.datagram_bytes_sent += bytes.size();
  if (is_ack) {
    ++lane_stats_.ack_datagrams;
    lane_stats_.ack_bytes += bytes.size();
  }
  // Queued, not yet on the wire: flush_sendq ships the queue through
  // sendmmsg; a kernel refusal there is recovered by the retransmission
  // lane like any other loss.
  p.sendq.push(port_of(peer), std::move(bytes));
}

std::size_t UdpTransport::pump_proc(Proc& p) {
  std::size_t handled = 0;
  for (;;) {
    const std::size_t n = p.socket.recv_batch(p.ring);
    for (std::size_t i = 0; i < n; ++i) {
      ++lane_stats_.datagrams_received;
      ++handled;
      try {
        // Decode straight from the ring's pooled buffer — no per-datagram
        // copy into a Bytes.
        handle_datagram(p, Datagram::decode(p.ring.datagram(i)));
      } catch (const util::ContractViolation&) {
        ++lane_stats_.malformed_datagrams;
      }
    }
    if (n < p.ring.capacity()) break;  // drained; no extra probe syscall
  }
  // Delayed acks: one cumulative ack per (peer, lane) the drain touched,
  // instead of one per datagram.
  if (!p.ack_pending.empty()) {
    for (const LinkKey& key : p.ack_pending) {
      send_ack(p, key.first, key.second);
    }
    p.ack_pending.clear();
  }
  return handled;
}

void UdpTransport::handle_datagram(Proc& p, Datagram d) {
  if (d.kind == Datagram::Kind::join || d.kind == Datagram::Kind::roster) {
    // Pre-protocol traffic belongs to the deployment harness, not the lane.
    if (stray_handler_) {
      stray_handler_(d);
    } else {
      ++lane_stats_.stray_datagrams;
    }
    return;
  }
  const bool known_sender = find_proc(d.from) != nullptr ||
                            peer_ports_.contains(d.from);
  if (d.to != p.id.value() || !known_sender) {
    ++lane_stats_.stray_datagrams;
    return;
  }
  ReliableLink& link = link_for(p, d.from, d.lane);
  const bool was_blocked = !link.all_acked() || !link.can_send();
  link.on_ack(d.ack);
  if (d.ack.window_probe) p.ack_pending.insert(LinkKey{d.from, d.lane});
  if (distributed_ && was_blocked && link.can_send()) {
    // The ack opened window (or retired the blocking frames): retry inner
    // links stalled towards this peer.
    if (const auto it = p.probe_timers.find(d.from);
        it != p.probe_timers.end()) {
      wheel_.cancel(it->second);
      p.probe_timers.erase(it);
    }
    inner_.resume(ProcessId(d.from));
  } else if (distributed_ && was_blocked && !link.can_send() &&
             d.lane == lane_byte_of(Lane::data)) {
    // The ack retired frames yet the window stays closed (typically a
    // zero-window advertisement from a parked receiver).  With batching,
    // the send that would have armed probe pacing may never recur — the
    // refusal happened on batch occupancy while the link was still open —
    // so arm it here; the probe timer re-fires until the window reopens.
    arm_probe(p, d.from, mono_us());
  }
  if (d.kind == Datagram::Kind::ack) return;

  // Data datagram: feed the receiver half and deliver whatever the frontier
  // released; mark the link for the drain-end ack unconditionally
  // (duplicates too — the sender is retransmitting precisely because it
  // missed our ack).
  if (link.accept(d.seq, std::move(d.payloads))) {
    deliver_ready(p, d.from, d.lane, link);
  }
  p.ack_pending.insert(LinkKey{d.from, d.lane});
}

void UdpTransport::deliver_ready(Proc& p, std::uint32_t peer,
                                 std::uint8_t lane_byte, ReliableLink& link) {
  std::uint64_t seq = 0;
  util::Bytes payload;
  if (!distributed_) {
    // Shadow verification: the endpoint already saw this message at
    // crossing time; the wire's job is to reproduce the exact bytes, in
    // link order.  Frames count as delivered only here — a run's
    // frames_delivered certifies the wire, not the in-memory shortcut.
    // Verification is endpoint-independent, so shadow traffic drains and
    // acks even when the proc has since crash-stopped in the inner network.
    auto& fifo = p.expected[LinkKey{peer, lane_byte}];
    while (link.next_ready(seq, payload)) {
      SVS_ASSERT(!fifo.empty(),
                 "shadow wire delivered a frame no crossing recorded");
      SVS_ASSERT(payload == *fifo.front(),
                 "shadow wire bytes diverged from the crossing's frame");
      fifo.pop_front();
      ++lane_stats_.frames_delivered;
    }
    return;
  }
  const Lane lane = lane_of(lane_byte);
  while (link.next_ready(seq, payload)) {
    MessagePtr fresh;
    try {
      fresh = Codec::decode(payload);
    } catch (const util::ContractViolation&) {
      // The lane already consumed the seq; an undecodable frame is dropped
      // like any other hostile datagram.
      ++lane_stats_.malformed_datagrams;
      continue;
    }
    ++lane_stats_.frames_delivered;
    if (lane == Lane::control) {
      // Control is never refused (§3.1).
      p.real->on_message(ProcessId(peer), fresh, lane);
      continue;
    }
    auto& parked = p.stalled[peer];
    if (!parked.empty() ||
        !p.real->on_message(ProcessId(peer), fresh, lane)) {
      // Inbound backpressure: park in link order and shrink the advertised
      // window; resume() drains and re-advertises.
      parked.push_back(std::move(fresh));
      ++lane_stats_.inbound_stalls;
    }
  }
}

// ---------------------------------------------------------------------------
// Timer wheel plumbing

void UdpTransport::schedule_retx(Proc& p, const LinkKey& key,
                                 ReliableLink& link) {
  const std::int64_t deadline = link.next_deadline();
  const auto it = p.retx_timers.find(key);
  if (deadline == std::numeric_limits<std::int64_t>::max()) {
    if (it != p.retx_timers.end()) {
      wheel_.cancel(it->second.id);
      p.retx_timers.erase(it);
    }
    return;
  }
  if (it != p.retx_timers.end() && wheel_.pending(it->second.id)) {
    if (it->second.deadline_us <= deadline) return;  // earlier timer wins
    wheel_.cancel(it->second.id);
  }
  p.retx_timers[key] = ArmedTimer{
      wheel_.arm(static_cast<std::uint64_t>(deadline),
                 timer_payload(kTimerRetx, p.index, key.first, key.second)),
      deadline};
}

void UdpTransport::arm_probe(Proc& p, std::uint32_t peer,
                             std::int64_t deadline_us) {
  if (const auto it = p.probe_timers.find(peer);
      it != p.probe_timers.end() && wheel_.pending(it->second)) {
    return;
  }
  p.probe_timers[peer] =
      wheel_.arm(static_cast<std::uint64_t>(deadline_us),
                 timer_payload(kTimerProbe, p.index, peer, 0));
}

void UdpTransport::flush_sendq(Proc& p) {
  if (p.sendq.empty()) return;
  if (p.sendq.flush(p.socket)) {
    if (p.sendq_timer != util::TimerWheel::kInvalidTimer) {
      wheel_.cancel(p.sendq_timer);
      p.sendq_timer = util::TimerWheel::kInvalidTimer;
    }
    return;
  }
  // Kernel backpressure: retry on a short wheel deadline so the queue
  // drains as soon as the send buffer does.
  if (!wheel_.pending(p.sendq_timer)) {
    p.sendq_timer =
        wheel_.arm(static_cast<std::uint64_t>(mono_us() + kSendRetryUs),
                   timer_payload(kTimerSendq, p.index, 0, 0));
  }
}

void UdpTransport::pump_wheel(std::int64_t now_us) {
  auto fire = [this, now_us](std::uint64_t payload) {
    on_timer(payload, now_us);
  };
  wheel_.advance(static_cast<std::uint64_t>(now_us), fire);
  const std::uint64_t cascades = wheel_.cascades();
  if (cascades != wheel_cascades_noted_) {
    metrics::counters::note_wheel_cascades(cascades - wheel_cascades_noted_);
    wheel_cascades_noted_ = cascades;
  }
}

void UdpTransport::on_timer(std::uint64_t payload, std::int64_t now_us) {
  const std::uint64_t kind = payload >> 60;
  const std::size_t idx = (payload >> 44) & 0xFFFF;
  const auto peer = static_cast<std::uint32_t>((payload >> 12) & 0xFFFF'FFFF);
  const auto lane = static_cast<std::uint8_t>((payload >> 4) & 0xFF);
  if (idx >= procs_.size()) return;
  Proc& p = *procs_[idx];
  const LinkKey key{peer, lane};
  switch (kind) {
    case kTimerRetx: {
      p.retx_timers.erase(key);  // one timer per link; this one just fired
      const auto it = p.links.find(key);
      if (it == p.links.end()) return;
      ReliableLink& link = *it->second;
      if (link.dead()) return;
      due_scratch_.clear();
      link.collect_due(now_us, due_scratch_);
      if (link.dead()) {
        link_death(p, key);
        return;
      }
      for (const std::uint64_t s : due_scratch_) {
        transmit(p, peer, lane, link, s);
      }
      // A stale early fire (the due frame was acked meanwhile) re-arms at
      // the link's true next deadline.
      schedule_retx(p, key, link);
      return;
    }
    case kTimerBatch:
      flush_batch(p, key);
      return;
    case kTimerProbe: {
      p.probe_timers.erase(peer);
      const auto it = p.links.find(LinkKey{peer, lane_byte_of(Lane::data)});
      if (it == p.links.end()) return;
      ReliableLink& link = *it->second;
      if (link.dead()) return;
      if (link.can_send()) {
        inner_.resume(ProcessId(peer));
        return;
      }
      if (link.all_acked() && link.peer_window() == 0) {
        send_ack(p, peer, lane_byte_of(Lane::data), /*probe=*/true);
      }
      arm_probe(p, peer, now_us + kProbeIntervalUs);
      return;
    }
    case kTimerSendq:
      p.sendq_timer = util::TimerWheel::kInvalidTimer;
      flush_sendq(p);
      return;
    default:
      SVS_UNREACHABLE("unknown wheel timer kind");
  }
}

void UdpTransport::link_death(Proc& p, const LinkKey& key) {
  if (const auto it = p.pending.find(key); it != p.pending.end()) {
    wheel_.cancel(it->second.timer);
    p.pending.erase(it);
  }
  SVS_ASSERT(distributed_,
             "all-local reliable link exhausted its retries");
  // Retry budget exhausted: the peer is unreachable for good — declare it
  // crashed in the inner network so the failure-detection and membership
  // machinery take over (kill -9 becomes a crash fault).
  const ProcessId peer(key.first);
  if (!inner_.is_crashed(peer)) inner_.crash(peer);
}

// ---------------------------------------------------------------------------
// Service loop

std::size_t UdpTransport::service_once(std::int64_t timeout_us) {
  std::int64_t now = mono_us();
  pump_wheel(now);
  std::size_t handled = 0;
  for (const auto& p : procs_) handled += pump_proc(*p);
  for (const auto& p : procs_) flush_sendq(*p);
  if (handled == 0 && timeout_us > 0) {
    fd_scratch_.clear();
    for (const auto& p : procs_) fd_scratch_.push_back(p->socket.fd());
    now = mono_us();
    std::int64_t wait = timeout_us;
    // Sleep no longer than the earliest wheel deadline: ppoll honours it
    // at µs precision, so a 200µs batch flush neither busy-spins nor
    // rounds up to a whole millisecond.
    const std::uint64_t due = wheel_.next_deadline_us();
    if (due != util::TimerWheel::kNever) {
      wait = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(due) - now, 1, timeout_us);
    }
    if (UdpSocket::wait_readable(fd_scratch_, wait)) {
      for (const auto& p : procs_) handled += pump_proc(*p);
    }
    pump_wheel(mono_us());
    for (const auto& p : procs_) flush_sendq(*p);
  }
  return handled;
}

std::size_t UdpTransport::service(std::int64_t timeout_us) {
  return service_once(timeout_us);
}

std::size_t UdpTransport::pump(std::int64_t timeout_us) {
  SVS_REQUIRE(distributed_, "pump() drives the distributed mode");
  return service_once(timeout_us);
}

}  // namespace svs::net
