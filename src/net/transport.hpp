// Backend-agnostic transport interface (DESIGN.md §6).
//
// Everything above net/ — the protocol core, consensus, failure detectors,
// the group harness — talks to this interface, never to a concrete backend.
// Two backends implement it:
//
//   * net::Network   (network.hpp)  — the deterministic simulated fabric:
//     n×n FIFO links with propagation delay, backpressure and purgeable
//     outgoing queues, driven by the virtual-time simulator.
//   * net::ThreadedLoopback (loopback.hpp) — the same link discipline, but
//     every delivery crosses a real thread boundary as an *encoded byte
//     buffer* (net::Codec): the receiver operates on a freshly decoded
//     message, never on the sender's object.  This is what proves nothing
//     in core/ depends on in-memory aliasing, and what makes the byte
//     counters measurements instead of estimates.
//
// The victim predicates of the purge operations cross the virtual boundary
// as util::FunctionRef (two words, non-owning, no allocation); the sim
// backend additionally keeps template fast paths for concrete callers.
//
// Time: the whole stack runs on the virtual clock, so crash timestamps are
// sim::TimePoints regardless of backend.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>

#include "net/message.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"
#include "util/function_ref.hpp"

namespace svs::net {

class FaultInjector;  // fault_injector.hpp

/// Receives messages from the network.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Handles an arriving message.  May return false only for Lane::data,
  /// meaning "my delivery buffers are full, retry later"; the link then
  /// stalls until resume() is signalled for this receiver.
  virtual bool on_message(ProcessId from, const MessagePtr& message,
                          Lane lane) = 0;
};

/// Aggregate counters (per transport).  Byte counters are *measured*: they
/// count encoded wire bytes, and `wire_size()` is contract-checked against
/// the codec at every encode site (net/codec.cpp), so the same numbers come
/// out of the simulated and the byte-moving backends.
struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_to_crashed = 0;
  std::uint64_t purged_outgoing = 0;
  std::uint64_t refusals = 0;  // data-lane stall events
  /// Queued messages examined by windowed outgoing purges (the sender-side
  /// analogue of DeliveryQueue purge_scan_steps; bounded by coverage_floor).
  std::uint64_t purge_window_scanned = 0;
  /// Wire bytes saved by delta stability gossip vs full snapshots.
  std::uint64_t gossip_bytes_saved = 0;
  /// Encoded bytes enqueued towards receivers (per destination: a multicast
  /// to d destinations counts d * encoded size).
  std::uint64_t bytes_sent = 0;
  /// Encoded bytes of messages actually accepted by receivers.
  std::uint64_t bytes_delivered = 0;
  /// Encoded bytes reclaimed from outgoing buffers by semantic purging —
  /// the sender-side wire-cost saving the paper's §4.2 argues about.
  std::uint64_t bytes_purged = 0;
  /// Fault injection (DESIGN.md §7): extra copies enqueued by duplication
  /// faults, messages silently dropped by out-of-model drop faults, and
  /// delivery attempts stalled by receiver-pause windows.
  std::uint64_t injected_duplicates = 0;
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_pauses = 0;
  /// Lost transmissions modeled by in-model loss faults (each one costs a
  /// retransmission delay; the message still arrives — reliable channels).
  std::uint64_t injected_losses = 0;

  /// Counter-wise sum — how the ShardedRunner merges per-shard transports
  /// into one report (runtime/shard.hpp).  Every field is a monotone count,
  /// so addition is the only aggregation that makes sense.
  NetworkStats& operator+=(const NetworkStats& o) {
    sent += o.sent;
    delivered += o.delivered;
    dropped_to_crashed += o.dropped_to_crashed;
    purged_outgoing += o.purged_outgoing;
    refusals += o.refusals;
    purge_window_scanned += o.purge_window_scanned;
    gossip_bytes_saved += o.gossip_bytes_saved;
    bytes_sent += o.bytes_sent;
    bytes_delivered += o.bytes_delivered;
    bytes_purged += o.bytes_purged;
    injected_duplicates += o.injected_duplicates;
    injected_drops += o.injected_drops;
    injected_pauses += o.injected_pauses;
    injected_losses += o.injected_losses;
    return *this;
  }
};

/// The send/multicast/attach surface of a network backend.
class Transport {
 public:
  /// Non-owning victim predicate; valid only for the duration of the call.
  using VictimRef = util::FunctionRef<bool(const MessagePtr&)>;

  virtual ~Transport() = default;

  /// Registers the endpoint for a process.  Must be called before any send
  /// involving `id`.  Must not be called from inside a delivery, purge or
  /// drain callback (backends may re-stride internal tables).
  virtual void attach(ProcessId id, Endpoint& endpoint) = 0;

  /// Enqueues a message from -> to.  No-op if the sender has crashed.
  /// Self-sends are allowed.
  virtual void send(ProcessId from, ProcessId to, MessagePtr message,
                    Lane lane) = 0;

  /// Fan-out send: enqueues `message` from -> every destination, in order.
  /// With `skip_self` (the data fan-out convention) `from` itself is
  /// skipped; without it a loopback copy is enqueued in the destination's
  /// position (the INIT/PRED broadcast convention).
  ///
  /// Encode-once contract (DESIGN.md §8): the fan-out shares one message
  /// object, its cached wire_size(), and — on byte-moving backends — one
  /// Codec::shared_frame buffer.  No backend serializes a message more
  /// than once, no matter how many destinations, retries or duplicates
  /// ship it.
  virtual void multicast(ProcessId from,
                         std::span<const ProcessId> destinations,
                         const MessagePtr& message, Lane lane,
                         bool skip_self = true) = 0;

  /// Marks a process crashed (crash-stop): it stops receiving and its
  /// future sends are ignored; messages already on the wire still arrive.
  virtual void crash(ProcessId id) = 0;

  /// Registers an observer invoked (synchronously) whenever a process
  /// crashes.  Used by oracle failure detectors.
  virtual void subscribe_crash(
      std::function<void(ProcessId, sim::TimePoint)> observer) = 0;

  [[nodiscard]] virtual bool is_crashed(ProcessId id) const = 0;

  /// Virtual time at which `id` crashed, if it did.
  [[nodiscard]] virtual std::optional<sim::TimePoint> crash_time(
      ProcessId id) const = 0;

  /// Signals that `to` has freed buffer space: all links stalled on `to`
  /// retry their head message.
  virtual void resume(ProcessId to) = 0;

  /// Registers an observer fired whenever an outgoing data-lane backlog of
  /// `from` shrinks (delivery accepted, purge, or drop).
  virtual void subscribe_backlog_drain(ProcessId from,
                                       std::function<void()> observer) = 0;

  /// Number of data-lane messages queued from -> to (the sender's outgoing
  /// buffer occupancy towards that destination).
  [[nodiscard]] virtual std::size_t data_backlog(ProcessId from,
                                                 ProcessId to) const = 0;

  /// Removes data-lane messages queued from `from` (to every destination)
  /// for which `victim` returns true.  Returns the number removed.
  virtual std::size_t purge_outgoing(ProcessId from, VictimRef victim) = 0;

  /// Windowed sender-side purge: visits only the queued data-lane messages
  /// from -> to whose Message::order_key lies in [floor_key, below_key).
  /// Precondition: the queue is non-decreasing in order_key.
  virtual std::size_t purge_outgoing_window(ProcessId from, ProcessId to,
                                            std::uint64_t floor_key,
                                            std::uint64_t below_key,
                                            VictimRef victim) = 0;

  /// Number of messages purge_outgoing_window would remove, without
  /// removing them (the flow-control admission pre-check of t2).
  virtual std::size_t count_outgoing_window(ProcessId from, ProcessId to,
                                            std::uint64_t floor_key,
                                            std::uint64_t below_key,
                                            VictimRef pred) = 0;

  /// Drops every queued data-lane message from -> * matching `victim`.
  /// Not counted as semantic purging (used to discard superseded views).
  virtual std::size_t drop_outgoing(ProcessId from, VictimRef victim) = 0;

  /// Adds `extra` to the propagation delay of link from -> to (simulated
  /// network perturbation).  Pass zero to clear.
  virtual void set_link_slowdown(ProcessId from, ProcessId to,
                                 sim::Duration extra) = 0;

  /// Installs (or clears, with nullptr) the fault-injection hook consulted
  /// at every enqueue and before every data-lane delivery attempt
  /// (fault_injector.hpp).  Not owned; must outlive the traffic it faults.
  virtual void set_fault_injector(FaultInjector* injector) = 0;

  /// Credits wire bytes saved by a delta-encoded gossip (core-layer
  /// telemetry surfaced with the other transport counters).
  virtual void note_gossip_bytes_saved(std::uint64_t bytes) = 0;

  [[nodiscard]] virtual const NetworkStats& stats() const = 0;

  /// Number of attached processes.
  [[nodiscard]] virtual std::uint32_t size() const = 0;
};

}  // namespace svs::net
