#include "net/codec.hpp"

#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "consensus/message.hpp"
#include "core/types.hpp"
#include "fd/heartbeat.hpp"
#include "fd/swim.hpp"
#include "obs/annotation.hpp"
#include "util/contracts.hpp"
#include "util/pool.hpp"
#include "workload/item_op.hpp"

namespace svs::net {
namespace {

// ---------------------------------------------------------------------------
// registries
// ---------------------------------------------------------------------------

template <typename EncodeFn, typename DecodeFn>
struct Registry {
  struct Entry {
    EncodeFn encode;
    DecodeFn decode;
  };
  std::mutex mutex;
  std::map<std::uint32_t, Entry> entries;

  void add(std::uint32_t kind, EncodeFn encode, DecodeFn decode) {
    SVS_REQUIRE(kind != 0, "kind 0 is the reserved opaque fallback");
    SVS_REQUIRE(encode != nullptr && decode != nullptr,
                "codec functions must be callable");
    const std::lock_guard<std::mutex> lock(mutex);
    entries[kind] = Entry{encode, decode};
  }

  /// Returned by value (two function pointers): nothing escapes the lock,
  /// so concurrent wire-thread lookups never alias a mutating map slot.
  [[nodiscard]] std::optional<Entry> find(std::uint32_t kind) {
    const std::lock_guard<std::mutex> lock(mutex);
    const auto it = entries.find(kind);
    if (it == entries.end()) return std::nullopt;
    return it->second;
  }
};

using PayloadRegistry =
    Registry<PayloadCodecRegistry::Encode, PayloadCodecRegistry::Decode>;
using ValueRegistry =
    Registry<ValueCodecRegistry::Encode, ValueCodecRegistry::Decode>;

// Built-in codecs are registered on first registry access, so no static
// initialization order or library dead-stripping games are required.
void ensure_builtins();

PayloadRegistry& payload_registry_instance() {
  static PayloadRegistry registry;
  return registry;
}

ValueRegistry& value_registry_instance() {
  static ValueRegistry registry;
  return registry;
}

PayloadRegistry& payload_registry() {
  ensure_builtins();
  return payload_registry_instance();
}

ValueRegistry& value_registry() {
  ensure_builtins();
  return value_registry_instance();
}

// ---------------------------------------------------------------------------
// built-in payload codec: workload::ItemOp (payload_kind 1)
// ---------------------------------------------------------------------------

void encode_item_op(const core::Payload& payload, util::ByteWriter& w) {
  const auto& op = static_cast<const workload::ItemOp&>(payload);
  // op kind in the low bits, commit flag in bit 7 — one byte, as the
  // wire_size() arithmetic promises.
  const auto packed = static_cast<std::uint8_t>(
      static_cast<std::uint8_t>(op.op()) |
      (op.commit() ? std::uint8_t{0x80} : std::uint8_t{0}));
  w.u8(packed);
  w.u64(op.item());
  w.u64(op.round());
  w.fixed64(op.value());
}

core::PayloadPtr decode_item_op(util::ByteReader& r) {
  const std::uint8_t packed = r.u8();
  const auto op_raw = static_cast<std::uint8_t>(packed & 0x7FU);
  SVS_REQUIRE(op_raw <= static_cast<std::uint8_t>(workload::OpKind::destroy),
              "bad ItemOp kind on the wire");
  const bool commit = (packed & 0x80U) != 0;
  const std::uint64_t item = r.u64();
  const std::uint64_t round = r.u64();
  const std::uint64_t value = r.fixed64();
  return util::pool_shared<workload::ItemOp>(
      static_cast<workload::OpKind>(op_raw), item, value, round, commit);
}

// ---------------------------------------------------------------------------
// built-in value codec: core::ProposalValue (value_kind 1)
// ---------------------------------------------------------------------------

void encode_proposal(const consensus::ValueBase& value, util::ByteWriter& w) {
  const auto& proposal = static_cast<const core::ProposalValue&>(value);
  w.u64(proposal.next_view().id().value());
  w.u64(proposal.next_view().size());
  for (const auto p : proposal.next_view().members()) w.u32(p.value());
  w.u64(proposal.pred_view().size());
  for (const auto& m : proposal.pred_view()) Codec::encode(*m, w);
}

consensus::ValuePtr decode_proposal(util::ByteReader& r) {
  const core::ViewId view_id(r.u64());
  const std::uint64_t member_count = r.u64();
  SVS_REQUIRE(member_count <= r.remaining(),
              "view membership longer than the buffer");
  std::vector<ProcessId> members;
  members.reserve(member_count);
  for (std::uint64_t i = 0; i < member_count; ++i) {
    members.emplace_back(r.u32());
  }
  const std::uint64_t pred_count = r.u64();
  SVS_REQUIRE(pred_count <= r.remaining(),
              "pred-view longer than the buffer");
  std::vector<core::DataMessagePtr> pred;
  pred.reserve(pred_count);
  for (std::uint64_t i = 0; i < pred_count; ++i) {
    MessagePtr m = Codec::decode(r);
    SVS_REQUIRE(m->type() == MessageType::data,
                "pred-view must contain data messages");
    pred.push_back(std::static_pointer_cast<const core::DataMessage>(m));
  }
  return util::pool_shared<core::ProposalValue>(
      core::View(view_id, std::move(members)), std::move(pred));
}

void ensure_builtins() {
  static std::once_flag once;
  std::call_once(once, [] {
    payload_registry_instance().add(workload::ItemOp::kPayloadKind,
                                    encode_item_op, decode_item_op);
    value_registry_instance().add(core::ProposalValue::kValueKind,
                                  encode_proposal, decode_proposal);
  });
}

// ---------------------------------------------------------------------------
// framed blobs: [kind u32][length u64][body]
//
// One protocol shared by application payloads and consensus values, so the
// framing rules (opaque filler for kind 0, exact-length asserts on both
// sides) cannot drift between the two.
// ---------------------------------------------------------------------------

template <typename Object, typename Registry>
void write_framed(util::ByteWriter& w, std::uint32_t kind, std::size_t length,
                  const Object* object, Registry& registry) {
  w.u32(kind);
  w.u64(length);
  const std::size_t start = w.size();
  if (kind == 0) {
    // Opaque: the bytes are filler, but the *count* is the object's honest
    // encoded size, so byte accounting survives the round trip.
    for (std::size_t i = 0; i < length; ++i) w.u8(0);
  } else {
    const auto entry = registry.find(kind);
    SVS_REQUIRE(entry.has_value(),
                "kind has no registered codec; register it before sending "
                "over a byte-moving transport");
    entry->encode(*object, w);
  }
  SVS_ASSERT(w.size() - start == length,
             "registered codec wrote a different number of bytes than the "
             "object's wire_size()");
}

/// MakeOpaque builds the kind-0 stand-in from the framed length; GetKind
/// reads the decoded object's kind back for the shape check.
template <typename Ptr, typename Registry, typename MakeOpaque,
          typename GetKind>
Ptr read_framed(util::ByteReader& r, Registry& registry,
                MakeOpaque&& make_opaque, GetKind&& get_kind) {
  const std::uint32_t kind = r.u32();
  const std::uint64_t length = r.u64();
  SVS_REQUIRE(length <= r.remaining(), "framed body truncated");
  if (kind == 0) {
    r.skip(length);
    return make_opaque(length);
  }
  const auto entry = registry.find(kind);
  SVS_REQUIRE(entry.has_value(), "unknown kind on the wire");
  const std::size_t start = r.position();
  Ptr decoded = entry->decode(r);
  SVS_REQUIRE(decoded != nullptr && r.position() - start == length &&
                  get_kind(*decoded) == kind,
              "registered codec decoded a different shape than framed");
  return decoded;
}

// ---------------------------------------------------------------------------
// per-type bodies
// ---------------------------------------------------------------------------

void encode_payload(const core::PayloadPtr& payload, util::ByteWriter& w) {
  const std::uint32_t kind = payload != nullptr ? payload->payload_kind() : 0;
  const std::size_t length = payload != nullptr ? payload->wire_size() : 0;
  write_framed(w, kind, length, payload.get(), payload_registry());
}

core::PayloadPtr decode_payload(util::ByteReader& r) {
  return read_framed<core::PayloadPtr>(
      r, payload_registry(),
      [](std::uint64_t length) -> core::PayloadPtr {
        if (length == 0) return nullptr;
        return util::pool_shared<core::OpaquePayload>(length);
      },
      [](const core::Payload& p) { return p.payload_kind(); });
}

void encode_data(const core::DataMessage& m, util::ByteWriter& w) {
  w.u32(m.sender().value());
  w.u64(m.seq());
  w.u64(m.view().value());
  m.annotation().encode(w);
  encode_payload(m.payload(), w);
  const auto& pb = m.piggyback();
  w.u8(pb.has_value() ? 1 : 0);
  if (!pb.has_value()) return;
  w.u64(pb->anchor);
  w.u64(pb->seen.size());
  for (const auto& [sender, seq] : pb->seen) {
    w.u32(sender.value());
    w.u64(seq);
  }
  w.u64(pb->debts.size());
  for (const auto& debt : pb->debts) {
    w.u64(debt.seq);
    w.u64(debt.cover_seq - debt.seq);  // covers are strictly newer
  }
}

core::StabilityPiggyback decode_piggyback(util::ByteReader& r) {
  core::StabilityPiggyback pb;
  pb.anchor = r.u64();
  const std::uint64_t count = r.u64();
  // Each entry is at least two bytes (two varints).
  SVS_REQUIRE(count <= r.remaining(),
              "piggybacked seen vector longer than the buffer");
  pb.seen.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const ProcessId sender(r.u32());
    const std::uint64_t seq = r.u64();
    pb.seen.emplace_back(sender, seq);
  }
  const std::uint64_t debt_count = r.u64();
  SVS_REQUIRE(debt_count <= r.remaining(),
              "piggybacked debt ledger longer than the buffer");
  pb.debts.reserve(debt_count);
  std::uint64_t prev_seq = 0;
  for (std::uint64_t i = 0; i < debt_count; ++i) {
    const std::uint64_t seq = r.u64();
    SVS_REQUIRE(i == 0 || seq > prev_seq,
                "piggybacked purge debts must be strictly ascending by seq");
    prev_seq = seq;
    const std::uint64_t cover_gap = r.u64();
    SVS_REQUIRE(cover_gap >= 1, "a purge debt's cover must be strictly newer");
    SVS_REQUIRE(seq <= std::numeric_limits<std::uint64_t>::max() - cover_gap,
                "purge debt cover overflows");
    pb.debts.push_back(core::PurgeDebt{seq, seq + cover_gap});
  }
  return pb;
}

MessagePtr decode_data(util::ByteReader& r) {
  const ProcessId sender(r.u32());
  const std::uint64_t seq = r.u64();
  const core::ViewId view(r.u64());
  obs::Annotation annotation = obs::Annotation::decode(r);
  core::PayloadPtr payload = decode_payload(r);
  auto m = util::pool_shared<core::DataMessage>(sender, seq, view,
                                               std::move(annotation),
                                               std::move(payload));
  const std::uint8_t has_piggyback = r.u8();
  SVS_REQUIRE(has_piggyback <= 1,
              "bad piggyback-presence flag on the wire");
  if (has_piggyback == 1) m->set_piggyback(decode_piggyback(r));
  return m;
}

void encode_init(const core::InitMessage& m, util::ByteWriter& w) {
  w.u64(m.view().value());
  w.u64(m.leave().size());
  for (const auto p : m.leave()) w.u32(p.value());
}

MessagePtr decode_init(util::ByteReader& r) {
  const core::ViewId view(r.u64());
  const std::uint64_t count = r.u64();
  SVS_REQUIRE(count <= r.remaining(), "leave set longer than the buffer");
  std::vector<ProcessId> leave;
  leave.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) leave.emplace_back(r.u32());
  return util::pool_shared<core::InitMessage>(view, std::move(leave));
}

void encode_pred(const core::PredMessage& m, util::ByteWriter& w) {
  w.u64(m.view().value());
  w.u64(m.accepted().size());
  for (const auto& accepted : m.accepted()) Codec::encode(*accepted, w);
}

MessagePtr decode_pred(util::ByteReader& r) {
  const core::ViewId view(r.u64());
  const std::uint64_t count = r.u64();
  SVS_REQUIRE(count <= r.remaining(), "accepted set longer than the buffer");
  std::vector<core::DataMessagePtr> accepted;
  accepted.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    MessagePtr m = Codec::decode(r);
    SVS_REQUIRE(m->type() == MessageType::data,
                "PRED must contain data messages");
    accepted.push_back(std::static_pointer_cast<const core::DataMessage>(m));
  }
  return util::pool_shared<core::PredMessage>(view, std::move(accepted));
}

void encode_stability(const core::StabilityMessage& m, util::ByteWriter& w) {
  w.u64(m.view().value());
  w.u64(m.anchor());
  w.u64(m.seen().size());
  for (const auto& [sender, seq] : m.seen()) {
    w.u32(sender.value());
    w.u64(seq);
  }
  w.u64(m.debts().size());
  for (const auto& debt : m.debts()) {
    w.u64(debt.seq);
    w.u64(debt.cover_seq - debt.seq);  // covers are strictly newer
  }
}

MessagePtr decode_stability(util::ByteReader& r) {
  const core::ViewId view(r.u64());
  const std::uint64_t anchor = r.u64();
  const std::uint64_t count = r.u64();
  // Each entry is at least two bytes (two varints).
  SVS_REQUIRE(count <= r.remaining(), "seen vector longer than the buffer");
  core::StabilityMessage::Seen seen;
  seen.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const ProcessId sender(r.u32());
    const std::uint64_t seq = r.u64();
    seen.emplace_back(sender, seq);
  }
  const std::uint64_t debt_count = r.u64();
  SVS_REQUIRE(debt_count <= r.remaining(),
              "debt ledger longer than the buffer");
  core::StabilityMessage::Debts debts;
  debts.reserve(debt_count);
  std::uint64_t prev_seq = 0;
  for (std::uint64_t i = 0; i < debt_count; ++i) {
    const std::uint64_t seq = r.u64();
    SVS_REQUIRE(i == 0 || seq > prev_seq,
                "purge debts must be strictly ascending by seq");
    prev_seq = seq;
    const std::uint64_t cover_gap = r.u64();
    SVS_REQUIRE(cover_gap >= 1, "a purge debt's cover must be strictly newer");
    SVS_REQUIRE(seq <= std::numeric_limits<std::uint64_t>::max() - cover_gap,
                "purge debt cover overflows");
    debts.push_back(core::PurgeDebt{seq, seq + cover_gap});
  }
  return util::pool_shared<core::StabilityMessage>(view, anchor,
                                                  std::move(seen),
                                                  std::move(debts));
}

// -- SWIM probe traffic (DESIGN.md §11) -------------------------------------

void encode_swim_updates(const fd::SwimUpdates& updates, util::ByteWriter& w) {
  w.u64(updates.size());
  for (const auto& update : updates) {
    w.u32(update.member.value());
    w.u8(static_cast<std::uint8_t>(update.status));
    w.u64(update.incarnation);
  }
}

fd::SwimUpdates decode_swim_updates(util::ByteReader& r) {
  const std::uint64_t count = r.u64();
  // Each update is at least three bytes (two varints plus the status byte).
  SVS_REQUIRE(count <= r.remaining(),
              "membership update section longer than the buffer");
  fd::SwimUpdates updates;
  updates.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const ProcessId member(r.u32());
    const std::uint8_t status = r.u8();
    SVS_REQUIRE(
        status <= static_cast<std::uint8_t>(fd::SwimUpdate::Status::confirm),
        "bad membership status on the wire");
    const std::uint64_t incarnation = r.u64();
    updates.push_back(fd::SwimUpdate{
        member, static_cast<fd::SwimUpdate::Status>(status), incarnation});
  }
  return updates;
}

void encode_swim_ping(const fd::SwimPingMessage& m, util::ByteWriter& w) {
  w.u64(m.nonce());
  encode_swim_updates(m.updates(), w);
}

MessagePtr decode_swim_ping(util::ByteReader& r) {
  const std::uint64_t nonce = r.u64();
  return util::pool_shared<fd::SwimPingMessage>(nonce,
                                                decode_swim_updates(r));
}

void encode_swim_ping_req(const fd::SwimPingReqMessage& m,
                          util::ByteWriter& w) {
  w.u64(m.nonce());
  w.u32(m.target().value());
  encode_swim_updates(m.updates(), w);
}

MessagePtr decode_swim_ping_req(util::ByteReader& r) {
  const std::uint64_t nonce = r.u64();
  const ProcessId target(r.u32());
  return util::pool_shared<fd::SwimPingReqMessage>(nonce, target,
                                                   decode_swim_updates(r));
}

void encode_swim_ack(const fd::SwimAckMessage& m, util::ByteWriter& w) {
  w.u64(m.nonce());
  w.u32(m.subject().value());
  w.u64(m.incarnation());
  encode_swim_updates(m.updates(), w);
}

MessagePtr decode_swim_ack(util::ByteReader& r) {
  const std::uint64_t nonce = r.u64();
  const ProcessId subject(r.u32());
  const std::uint64_t incarnation = r.u64();
  return util::pool_shared<fd::SwimAckMessage>(nonce, subject, incarnation,
                                               decode_swim_updates(r));
}

// -- ring-aggregated stability digest (DESIGN.md §11) -----------------------

void encode_stability_digest(const core::StabilityDigestMessage& m,
                             util::ByteWriter& w) {
  w.u64(m.view().value());
  w.u64(m.rows().size());
  for (const auto& row : m.rows()) {
    w.u32(row.origin.value());
    w.u8(row.anchor.has_value() ? 1 : 0);
    if (row.anchor.has_value()) w.u64(*row.anchor);
    w.u64(row.seen.size());
    for (const auto& [sender, seq] : row.seen) {
      w.u32(sender.value());
      w.u64(seq);
    }
    w.u64(row.debts.size());
    for (const auto& debt : row.debts) {
      w.u64(debt.seq);
      w.u64(debt.cover_seq - debt.seq);  // covers are strictly newer
    }
  }
}

MessagePtr decode_stability_digest(util::ByteReader& r) {
  const core::ViewId view(r.u64());
  const std::uint64_t row_count = r.u64();
  // Each row is at least three bytes (origin, presence flag, two counts).
  SVS_REQUIRE(row_count <= r.remaining(),
              "digest row section longer than the buffer");
  core::StabilityDigestMessage::Rows rows;
  rows.reserve(row_count);
  for (std::uint64_t i = 0; i < row_count; ++i) {
    core::StabilityDigestMessage::Row row;
    row.origin = ProcessId(r.u32());
    const std::uint8_t has_anchor = r.u8();
    SVS_REQUIRE(has_anchor <= 1,
                "bad anchor-presence flag on the wire");
    if (has_anchor == 1) row.anchor = r.u64();
    const std::uint64_t seen_count = r.u64();
    SVS_REQUIRE(seen_count <= r.remaining(),
                "digest seen vector longer than the buffer");
    row.seen.reserve(seen_count);
    for (std::uint64_t j = 0; j < seen_count; ++j) {
      const ProcessId sender(r.u32());
      const std::uint64_t seq = r.u64();
      row.seen.emplace_back(sender, seq);
    }
    const std::uint64_t debt_count = r.u64();
    SVS_REQUIRE(debt_count <= r.remaining(),
                "digest debt ledger longer than the buffer");
    row.debts.reserve(debt_count);
    std::uint64_t prev_seq = 0;
    for (std::uint64_t j = 0; j < debt_count; ++j) {
      const std::uint64_t seq = r.u64();
      SVS_REQUIRE(j == 0 || seq > prev_seq,
                  "digest purge debts must be strictly ascending by seq");
      prev_seq = seq;
      const std::uint64_t cover_gap = r.u64();
      SVS_REQUIRE(cover_gap >= 1,
                  "a purge debt's cover must be strictly newer");
      SVS_REQUIRE(
          seq <= std::numeric_limits<std::uint64_t>::max() - cover_gap,
          "purge debt cover overflows");
      row.debts.push_back(core::PurgeDebt{seq, seq + cover_gap});
    }
    rows.push_back(std::move(row));
  }
  return util::pool_shared<core::StabilityDigestMessage>(view,
                                                         std::move(rows));
}

void encode_consensus(const consensus::ConsensusMessage& m,
                      util::ByteWriter& w) {
  w.u64(m.instance().value());
  w.u32(m.round());
  w.u8(static_cast<std::uint8_t>(m.phase()));
  w.u32(m.timestamp());
  const auto& value = m.value();
  w.u8(value != nullptr ? 1 : 0);
  if (value == nullptr) return;
  write_framed(w, value->value_kind(), value->wire_size(), value.get(),
               value_registry());
}

MessagePtr decode_consensus(util::ByteReader& r) {
  const consensus::InstanceId instance(r.u64());
  const consensus::Round round = r.u32();
  const std::uint8_t phase_raw = r.u8();
  SVS_REQUIRE(
      phase_raw <= static_cast<std::uint8_t>(consensus::Phase::decide),
      "bad consensus phase on the wire");
  const consensus::Round timestamp = r.u32();
  const std::uint8_t has_value = r.u8();
  SVS_REQUIRE(has_value <= 1, "bad value-presence flag on the wire");
  consensus::ValuePtr value;
  if (has_value == 1) {
    value = read_framed<consensus::ValuePtr>(
        r, value_registry(),
        [](std::uint64_t length) {
          return util::pool_shared<consensus::OpaqueValue>(length);
        },
        [](const consensus::ValueBase& v) { return v.value_kind(); });
  }
  return util::pool_shared<consensus::ConsensusMessage>(
      instance, round, static_cast<consensus::Phase>(phase_raw),
      std::move(value), timestamp);
}

}  // namespace

// ---------------------------------------------------------------------------
// registries (public surface)
// ---------------------------------------------------------------------------

void PayloadCodecRegistry::register_codec(std::uint32_t kind, Encode encode,
                                          Decode decode) {
  payload_registry().add(kind, encode, decode);
}

bool PayloadCodecRegistry::registered(std::uint32_t kind) {
  return payload_registry().find(kind).has_value();
}

void ValueCodecRegistry::register_codec(std::uint32_t kind, Encode encode,
                                        Decode decode) {
  value_registry().add(kind, encode, decode);
}

bool ValueCodecRegistry::registered(std::uint32_t kind) {
  return value_registry().find(kind).has_value();
}

// ---------------------------------------------------------------------------
// codec
// ---------------------------------------------------------------------------

void Codec::encode(const Message& m, util::ByteWriter& w) {
  const std::size_t start = w.size();
  w.u8(static_cast<std::uint8_t>(m.type()));
  switch (m.type()) {
    case MessageType::data:
      encode_data(static_cast<const core::DataMessage&>(m), w);
      break;
    case MessageType::init:
      encode_init(static_cast<const core::InitMessage&>(m), w);
      break;
    case MessageType::pred:
      encode_pred(static_cast<const core::PredMessage&>(m), w);
      break;
    case MessageType::stability:
      encode_stability(static_cast<const core::StabilityMessage&>(m), w);
      break;
    case MessageType::consensus:
      encode_consensus(static_cast<const consensus::ConsensusMessage&>(m), w);
      break;
    case MessageType::heartbeat:
      break;  // the tag is the whole message
    case MessageType::swim_ping:
      encode_swim_ping(static_cast<const fd::SwimPingMessage&>(m), w);
      break;
    case MessageType::swim_ping_req:
      encode_swim_ping_req(static_cast<const fd::SwimPingReqMessage&>(m), w);
      break;
    case MessageType::swim_ack:
      encode_swim_ack(static_cast<const fd::SwimAckMessage&>(m), w);
      break;
    case MessageType::stability_digest:
      encode_stability_digest(
          static_cast<const core::StabilityDigestMessage&>(m), w);
      break;
    case MessageType::other:
      SVS_REQUIRE(false,
                  "MessageType::other has no wire encoding; byte-moving "
                  "transports carry protocol messages only");
  }
  // The drift guard of DESIGN.md §6: wire_size() *is* the encoded size.
  SVS_ASSERT(w.size() - start == m.wire_size(),
             "codec wrote a different number of bytes than wire_size() "
             "promises");
}

util::Bytes Codec::encode(const Message& m) {
  util::ByteWriter w;
  encode(m, w);
  return w.take();
}

FramePtr Codec::shared_frame(const Message& m) {
  if (m.frame_cache_ == nullptr) {
    m.frame_cache_ = util::pool_shared<util::Bytes>(encode(m));
  }
  return m.frame_cache_;
}

MessagePtr Codec::decode(util::ByteReader& r) {
  const std::uint8_t tag = r.u8();
  SVS_REQUIRE(
      tag > static_cast<std::uint8_t>(MessageType::other) &&
          tag <= static_cast<std::uint8_t>(MessageType::stability_digest),
      "bad message type tag on the wire");
  switch (static_cast<MessageType>(tag)) {
    case MessageType::data:
      return decode_data(r);
    case MessageType::init:
      return decode_init(r);
    case MessageType::pred:
      return decode_pred(r);
    case MessageType::stability:
      return decode_stability(r);
    case MessageType::consensus:
      return decode_consensus(r);
    case MessageType::heartbeat:
      return util::pool_shared<fd::HeartbeatMessage>();
    case MessageType::swim_ping:
      return decode_swim_ping(r);
    case MessageType::swim_ping_req:
      return decode_swim_ping_req(r);
    case MessageType::swim_ack:
      return decode_swim_ack(r);
    case MessageType::stability_digest:
      return decode_stability_digest(r);
    case MessageType::other:
      break;
  }
  SVS_UNREACHABLE("tag range checked above");
}

MessagePtr Codec::decode(const util::Bytes& frame) {
  util::ByteReader r(frame);
  MessagePtr m = decode(r);
  SVS_REQUIRE(r.exhausted(), "garbage bytes after the message");
  return m;
}

}  // namespace svs::net
