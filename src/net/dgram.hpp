// Datagram framing for the UDP transport's reliable-delivery lane
// (DESIGN.md §9).
//
// One UDP datagram carries exactly one Datagram.  The format sits *below*
// net::Codec: a data datagram's payload is an opaque codec frame (the same
// refcounted buffer the loopback wire ships), wrapped in the link-lane
// header that makes the datagram channel reliable — a per-(link, lane)
// sequence number plus a piggybacked acknowledgement block.
//
//   byte 0   magic 0xD6
//   byte 1   kind            data=1  ack=2  join=3  roster=4
//   data:    from, to (varint raw ProcessIds), lane u8, seq (varint, >= 1),
//            AckBlock, frame_count (varint, 1..kMaxBatchFrames), then per
//            frame len (varint, >= 1) + frame bytes; the frames must fill
//            the datagram exactly
//   ack:     from, to, lane u8, AckBlock
//   join:    id (varint), port (varint, <= 65535)
//   roster:  count (varint, <= kMaxRoster), then per member id + port
//
// A data datagram carries a *batch* of codec frames under ONE link
// sequence number: the per-destination batcher (udp_transport.hpp)
// coalesces small frames bound for the same (peer, lane) into one datagram
// under the MTU, and the reliable lane stages, retransmits and acks the
// batch as a unit — so header and syscall cost amortize across the batch
// while the link-order delivery contract is untouched (frames inside a
// batch are in send order; batches are in link-seq order).
//
// The AckBlock always describes the link flowing in the OPPOSITE direction
// of the datagram that carries it (the receiver's view of sender->receiver
// traffic): cumulative frontier, up to kMaxSackRanges delta-coded selective
// ranges strictly above it, the advertised receive window, and an optional
// delivery verdict (the all-local backend's synchronous accept/refuse
// round-trip — udp_transport.hpp).
//
//   cum (varint), sack_count (varint), per range gap + len (varints, both
//   >= 1; range starts at previous_end + gap + 1), window (varint),
//   flags u8, verdict_seq (varint)
//
// Decoding is hardened for untrusted bytes exactly like net::Codec
// (tests/codec_test.cpp fuzzes it): bad magic, unknown kinds or flag bits,
// zero seqs, out-of-bound ports and counts, non-canonical sack ranges,
// payload length mismatches and trailing garbage all throw
// util::ContractViolation — a hostile datagram can be dropped, never
// corrupt link state.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "net/message.hpp"
#include "net/types.hpp"
#include "util/bytes.hpp"

namespace svs::net {

/// Acknowledgement state piggybacked on (or sent as) a datagram.
struct AckBlock {
  struct Range {
    std::uint64_t first = 0;
    std::uint64_t last = 0;  // inclusive
  };

  /// Every seq <= cum has been received.
  std::uint64_t cum = 0;
  /// Received runs strictly above cum + 1, ascending and non-adjacent.
  std::vector<Range> sacks;
  /// Receive window the peer may keep in flight (0 = stalled; the sender
  /// probes until it reopens).
  std::uint32_t window = 0;
  /// Synchronous-crossing verdict: whether the frame with link seq
  /// `verdict_seq` was accepted by the endpoint (all-local backend only).
  bool verdict_valid = false;
  bool verdict_accept = false;
  /// Zero-window probe: "reply with your current ack state".
  bool window_probe = false;
  std::uint64_t verdict_seq = 0;
};

/// One decoded UDP datagram.  Kind-specific fields are zero/empty for the
/// other kinds.
struct Datagram {
  enum class Kind : std::uint8_t {
    data = 1,    // reliable-lane frame + piggybacked ack
    ack = 2,     // pure acknowledgement / window update / probe
    join = 3,    // pre-protocol: "process `id` listens on `port`"
    roster = 4,  // pre-protocol: the introducer's full membership list
  };

  static constexpr std::uint8_t kMagic = 0xD6;
  static constexpr std::size_t kMaxSackRanges = 64;
  static constexpr std::size_t kMaxRoster = 1024;
  /// Max codec frames one data datagram may batch.
  static constexpr std::size_t kMaxBatchFrames = 64;

  Kind kind = Kind::data;
  std::uint32_t from = 0;  // raw ProcessId values (data / ack)
  std::uint32_t to = 0;
  std::uint8_t lane = 0;  // net::Lane as a byte (data / ack)
  std::uint64_t seq = 0;  // link sequence number (data; >= 1)
  AckBlock ack;           // data / ack
  std::vector<util::Bytes> payloads;  // data: >= 1 net::Codec frames
  std::uint32_t join_id = 0;    // join
  std::uint16_t join_port = 0;  // join
  std::vector<std::pair<std::uint32_t, std::uint16_t>> roster;  // roster

  /// Single-frame convenience (a batch of one).
  [[nodiscard]] static util::Bytes encode_data(std::uint32_t from,
                                               std::uint32_t to,
                                               std::uint8_t lane,
                                               std::uint64_t seq,
                                               const AckBlock& ack,
                                               const util::Bytes& frame);
  /// Batch form: all frames ride under the one link seq.
  [[nodiscard]] static util::Bytes encode_data(
      std::uint32_t from, std::uint32_t to, std::uint8_t lane,
      std::uint64_t seq, const AckBlock& ack,
      std::span<const FramePtr> frames);
  [[nodiscard]] static util::Bytes encode_ack(std::uint32_t from,
                                              std::uint32_t to,
                                              std::uint8_t lane,
                                              const AckBlock& ack);
  [[nodiscard]] static util::Bytes encode_join(std::uint32_t id,
                                               std::uint16_t port);
  [[nodiscard]] static util::Bytes encode_roster(
      const std::vector<std::pair<std::uint32_t, std::uint16_t>>& members);

  /// Decodes one datagram; requires full consumption of `bytes`.  Throws
  /// util::ContractViolation on any malformation.  The span overload is
  /// the hot path: the UDP receive side decodes straight out of its ring
  /// buffers without copying into a Bytes first.
  [[nodiscard]] static Datagram decode(std::span<const std::uint8_t> bytes);
  [[nodiscard]] static Datagram decode(const util::Bytes& bytes) {
    return decode(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  }
};

}  // namespace svs::net
