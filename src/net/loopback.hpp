// Threaded loopback transport backend (DESIGN.md §6).
//
// Same link discipline as the sim backend — it *contains* a net::Network,
// so FIFO order, propagation delay, backpressure, stalls, purging and crash
// semantics are identical and runs stay deterministic — but the in-memory
// handoff at delivery time is replaced by a real wire:
//
//   sender side                     "the wire"              receiver side
//   ───────────────────────────────────────────────────────────────────────
//   Message object queued    →  shared_frame (encoded   →  per-process
//   in the outgoing buffer      once per message, the       wire thread
//   (retransmission copy,       refcounted buffer shared    decodes a fresh
//   purgeable, sender-local)    by every destination and    Message object
//                               retry) pushed to the        ↓
//                               receiver's mailbox          back on the
//                               (mutex+condvar)             protocol thread
//                                                           via on_message
//
// The receiver never sees the sender's object: every delivered message is a
// byte buffer that crossed a thread boundary and was decoded from scratch.
// If anything in core/ relied on shared-pointer identity across the "wire"
// (pointer-compared flush dedup, aliased annotations, mutated payloads), it
// would break here and only here — the cross-backend equivalence test
// (tests/loopback_test.cpp) runs a crash + view-change + slow-consumer
// scenario on both backends and demands identical per-process delivery.
//
// The sender-side outgoing queues keep the original objects: that is the
// honest model (a real sender purges its own unserialized retransmission
// buffer; serialization happens when bytes hit the wire), and it is what
// lets the purge/backpressure machinery behave identically on both
// backends.
//
// Refused deliveries (receiver full) are re-attempted later by the link
// layer; the retry re-crosses the wire as a real retransmission would,
// reusing the message's cached frame (encode-once, DESIGN.md §8).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/network.hpp"
#include "net/transport.hpp"
#include "util/bytes.hpp"

namespace svs::net {

class ThreadedLoopback final : public Transport {
 public:
  using Config = Network::Config;

  ThreadedLoopback(sim::Simulator& simulator, Config config)
      : inner_(simulator, config) {}
  ~ThreadedLoopback() override;

  ThreadedLoopback(const ThreadedLoopback&) = delete;
  ThreadedLoopback& operator=(const ThreadedLoopback&) = delete;

  /// Attaches the endpoint behind a codec wire: spawns the process's wire
  /// thread and registers the encode/decode adapter with the link layer.
  void attach(ProcessId id, Endpoint& endpoint) override;

  // Link-layer surface: identical semantics to the sim backend, by
  // construction — the inner Network owns the queues, timers and stalls.
  void send(ProcessId from, ProcessId to, MessagePtr message,
            Lane lane) override {
    inner_.send(from, to, std::move(message), lane);
  }
  void multicast(ProcessId from, std::span<const ProcessId> destinations,
                 const MessagePtr& message, Lane lane,
                 bool skip_self = true) override {
    inner_.multicast(from, destinations, message, lane, skip_self);
  }
  void crash(ProcessId id) override { inner_.crash(id); }
  void subscribe_crash(
      std::function<void(ProcessId, sim::TimePoint)> observer) override {
    inner_.subscribe_crash(std::move(observer));
  }
  [[nodiscard]] bool is_crashed(ProcessId id) const override {
    return inner_.is_crashed(id);
  }
  [[nodiscard]] std::optional<sim::TimePoint> crash_time(
      ProcessId id) const override {
    return inner_.crash_time(id);
  }
  void resume(ProcessId to) override { inner_.resume(to); }
  void subscribe_backlog_drain(ProcessId from,
                               std::function<void()> observer) override {
    inner_.subscribe_backlog_drain(from, std::move(observer));
  }
  [[nodiscard]] std::size_t data_backlog(ProcessId from,
                                         ProcessId to) const override {
    return inner_.data_backlog(from, to);
  }
  std::size_t purge_outgoing(ProcessId from, VictimRef victim) override {
    return inner_.purge_outgoing(from, victim);
  }
  std::size_t purge_outgoing_window(ProcessId from, ProcessId to,
                                    std::uint64_t floor_key,
                                    std::uint64_t below_key,
                                    VictimRef victim) override {
    return inner_.purge_outgoing_window(from, to, floor_key, below_key,
                                        victim);
  }
  std::size_t count_outgoing_window(ProcessId from, ProcessId to,
                                    std::uint64_t floor_key,
                                    std::uint64_t below_key,
                                    VictimRef pred) override {
    return inner_.count_outgoing_window(from, to, floor_key, below_key, pred);
  }
  std::size_t drop_outgoing(ProcessId from, VictimRef victim) override {
    return inner_.drop_outgoing(from, victim);
  }
  void set_link_slowdown(ProcessId from, ProcessId to,
                         sim::Duration extra) override {
    inner_.set_link_slowdown(from, to, extra);
  }
  void set_fault_injector(FaultInjector* injector) override {
    // The inner Network owns the link discipline, so injected faults hit
    // both backends identically; duplicated copies cross the wire thread
    // as separate crossings of the same cached frame, like real
    // retransmissions of an already-serialized buffer.
    inner_.set_fault_injector(injector);
  }
  void note_gossip_bytes_saved(std::uint64_t bytes) override {
    inner_.note_gossip_bytes_saved(bytes);
  }
  [[nodiscard]] const NetworkStats& stats() const override {
    return inner_.stats();
  }
  [[nodiscard]] std::uint32_t size() const override { return inner_.size(); }

  // -- wire telemetry ----------------------------------------------------

  /// Encoded frames that crossed a wire thread (one per delivery attempt;
  /// retries after a refusal cross again, like real retransmissions).
  [[nodiscard]] std::uint64_t wire_frames() const { return wire_frames_; }
  /// Total encoded bytes those frames carried — measured on the actual
  /// buffers, cross-checkable against stats().bytes_delivered.
  [[nodiscard]] std::uint64_t wire_bytes() const { return wire_bytes_; }
  /// Times Codec actually serialized a message (first crossing only: the
  /// encode-once frame cache reuses the buffer for every further
  /// destination, retry and injected duplicate — DESIGN.md §8).
  [[nodiscard]] std::uint64_t frame_encodes() const { return frame_encodes_; }
  /// Crossings served from the cached frame (wire_frames - frame_encodes).
  [[nodiscard]] std::uint64_t frame_reuses() const { return frame_reuses_; }
  /// Wire-thread drain cycles: each one swaps the whole mailbox out under
  /// a single lock acquisition and decodes the burst outside it, so
  /// wire_frames() / wire_drains() is the coalescing factor (1.0 when every
  /// frame crossed alone).
  [[nodiscard]] std::uint64_t wire_drains() const;

 private:
  /// One process's half of the wire: a mailbox the protocol thread feeds
  /// encoded frames into and a decoder thread that hands fresh messages
  /// back.  The handoff is synchronous per frame (the link layer already
  /// serializes deliveries), so at most one frame is in flight per process.
  struct WireChannel {
    std::mutex mutex;
    std::condition_variable frame_ready;
    std::condition_variable decode_done;
    std::deque<FramePtr> frames;
    std::deque<MessagePtr> decoded;
    std::exception_ptr error;
    std::uint64_t drains = 0;  // guarded by mutex
    bool stop = false;
    std::thread thread;

    /// Protocol thread: ship `frame` across and wait for the decode.  The
    /// frame is refcounted and immutable — a multicast ships the same
    /// buffer to every destination without copying it.
    MessagePtr round_trip(FramePtr frame);
    /// Wire thread body.
    void run();
  };

  /// Interposed endpoint: encode, cross the wire, deliver the fresh object.
  class WireAdapter final : public Endpoint {
   public:
    WireAdapter(ThreadedLoopback& owner, Endpoint& real, WireChannel& channel)
        : owner_(owner), real_(real), channel_(channel) {}
    bool on_message(ProcessId from, const MessagePtr& message,
                    Lane lane) override;

   private:
    ThreadedLoopback& owner_;
    Endpoint& real_;
    WireChannel& channel_;
  };

  Network inner_;
  std::vector<std::unique_ptr<WireChannel>> channels_;
  std::vector<std::unique_ptr<WireAdapter>> adapters_;
  // Touched only from the protocol thread (the wire threads never see
  // these), so plain integers suffice.
  std::uint64_t wire_frames_ = 0;
  std::uint64_t wire_bytes_ = 0;
  std::uint64_t frame_encodes_ = 0;
  std::uint64_t frame_reuses_ = 0;
};

}  // namespace svs::net
