// Simulated point-to-point network: n x n reliable FIFO channels (§3.1) with
// propagation delay, receiver backpressure and purgeable outgoing queues.
//
// Model (matches §5.3): each ordered pair (from, to) has one queue per lane.
// A queued message is still in the *sender's outgoing buffer* until the
// receiver accepts it; acceptance is attempted once the message's
// propagation delay has elapsed.  Each link lane runs one delivery timer
// that drains every message already due in a single simulator event, so a
// burst of n same-ready messages costs one heap operation, not n.  A
// receiver may refuse a data-lane message ("ceases to accept further
// messages from the network"), which stalls the link head and lets the
// queue — the sender's outgoing buffer — fill up.
// Control-lane messages are never refused.  Bandwidth is unlimited: there is
// no per-byte service time, only propagation delay (§5.3: "unlimited
// bandwidth in order not to be a limiting factor").
//
// Semantic purging of outgoing buffers (the sender-side half of the paper's
// buffer purging, detailed in the companion work [22] referenced from §3.3)
// is exposed via purge_outgoing().
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/message.hpp"
#include "net/types.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace svs::net {

/// Receives messages from the network.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Handles an arriving message.  May return false only for Lane::data,
  /// meaning "my delivery buffers are full, retry later"; the link then
  /// stalls until resume() is signalled for this receiver.
  virtual bool on_message(ProcessId from, const MessagePtr& message,
                          Lane lane) = 0;
};

/// Aggregate counters (per network).
struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_to_crashed = 0;
  std::uint64_t purged_outgoing = 0;
  std::uint64_t refusals = 0;  // data-lane stall events
};

class Network {
 public:
  struct Config {
    /// One-way propagation delay applied to every message.
    sim::Duration delay = sim::Duration::millis(1);
    /// Extra uniformly distributed jitter in [0, jitter] added per message.
    /// FIFO order is preserved regardless (arrival times are monotone per
    /// link lane).
    sim::Duration jitter = sim::Duration::zero();
    std::uint64_t seed = 0x5eed;
  };

  Network(sim::Simulator& simulator, Config config);

  /// Registers the endpoint for a process.  Must be called before any send
  /// involving `id`.
  void attach(ProcessId id, Endpoint& endpoint);

  /// Enqueues a message from -> to.  No-op if the sender has crashed.
  /// Self-sends are allowed (they traverse a loopback link with the same
  /// delay), which keeps broadcast loops in upper layers uniform.
  void send(ProcessId from, ProcessId to, MessagePtr message, Lane lane);

  /// Marks a process crashed (crash-stop): it stops receiving (messages
  /// addressed to it are dropped on arrival) and its future sends are
  /// ignored.  Messages it already sent keep flowing — a real crashed host's
  /// packets already on the wire still arrive.
  void crash(ProcessId id);

  /// Registers an observer invoked (synchronously) whenever a process
  /// crashes.  Used by oracle failure detectors.
  void subscribe_crash(std::function<void(ProcessId, sim::TimePoint)> observer);

  [[nodiscard]] bool is_crashed(ProcessId id) const;

  /// Virtual time at which `id` crashed, if it did (used by the oracle
  /// failure detector).
  [[nodiscard]] std::optional<sim::TimePoint> crash_time(ProcessId id) const;

  /// Signals that `to` has freed buffer space: all links stalled on `to`
  /// retry their head message.
  void resume(ProcessId to);

  /// Registers an observer fired whenever an outgoing data-lane backlog of
  /// `from` shrinks (delivery accepted, purge, or drop).  Senders use it to
  /// wake blocked producers.
  void subscribe_backlog_drain(ProcessId from, std::function<void()> observer);

  /// Number of data-lane messages queued from -> to (the sender's outgoing
  /// buffer occupancy towards that destination).
  [[nodiscard]] std::size_t data_backlog(ProcessId from, ProcessId to) const;

  /// Removes data-lane messages queued from `from` (to every destination)
  /// for which `victim` returns true.  Returns the number removed.  This is
  /// sender-side semantic purging: only messages not yet accepted by the
  /// receiver can be removed.
  std::size_t purge_outgoing(
      ProcessId from, const std::function<bool(const MessagePtr&)>& victim);

  /// As above but restricted to one destination.
  std::size_t purge_outgoing_to(
      ProcessId from, ProcessId to,
      const std::function<bool(const MessagePtr&)>& victim);

  /// Drops every queued data-lane message from -> * matching `victim`.
  /// Unlike purge_outgoing this is not counted as semantic purging; it is
  /// used at view installation to discard messages of superseded views.
  std::size_t drop_outgoing(
      ProcessId from, const std::function<bool(const MessagePtr&)>& victim);

  /// Adds `extra` to the propagation delay of link from -> to (simulated
  /// network perturbation).  Pass zero to clear.
  void set_link_slowdown(ProcessId from, ProcessId to, sim::Duration extra);

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

 private:
  struct QueuedMessage {
    MessagePtr message;
    sim::TimePoint ready;  // earliest acceptance-attempt time
  };

  struct Link {
    std::deque<QueuedMessage> queue[2];  // indexed by Lane
    sim::TimePoint last_ready[2] = {};   // monotone per lane (FIFO)
    bool stalled = false;                // data lane refused; waiting resume
    sim::EventId pending[2] = {};        // scheduled attempt per lane
    bool in_attempt[2] = {false, false};  // delivery running (re-entrancy)
    sim::Duration slowdown = sim::Duration::zero();
  };

  using LinkKey = std::pair<ProcessId, ProcessId>;

  Link& link(ProcessId from, ProcessId to);
  [[nodiscard]] const Link* find_link(ProcessId from, ProcessId to) const;
  void schedule_attempt(ProcessId from, ProcessId to, Link& l, Lane lane);
  void attempt(ProcessId from, ProcessId to, Lane lane);
  std::size_t erase_from_queue(
      Link& l, ProcessId from, ProcessId to,
      const std::function<bool(const MessagePtr&)>& victim, bool count_as_purged);

  sim::Simulator& sim_;
  Config config_;
  sim::Rng rng_;
  std::unordered_map<ProcessId, Endpoint*> endpoints_;
  std::unordered_map<ProcessId, sim::TimePoint> crashed_;
  std::map<LinkKey, Link> links_;
  std::vector<std::function<void(ProcessId, sim::TimePoint)>> crash_observers_;
  std::unordered_map<ProcessId, std::vector<std::function<void()>>>
      drain_observers_;
  NetworkStats stats_;

  void notify_drain(ProcessId from);
};

}  // namespace svs::net
