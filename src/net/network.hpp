// Simulated point-to-point network: n x n reliable FIFO channels (§3.1) with
// propagation delay, receiver backpressure and purgeable outgoing queues.
// This is the deterministic sim backend of net::Transport; the threaded
// loopback backend (net/loopback.hpp) layers a byte-moving wire on top of
// the same link discipline.
//
// Model (matches §5.3): each ordered pair (from, to) has one queue per lane.
// A queued message is still in the *sender's outgoing buffer* until the
// receiver accepts it; acceptance is attempted once the message's
// propagation delay has elapsed.  Each link lane runs one delivery timer
// that drains every message already due in a single simulator event, so a
// burst of n same-ready messages costs one heap operation, not n.  A
// receiver may refuse a data-lane message ("ceases to accept further
// messages from the network"), which stalls the link head and lets the
// queue — the sender's outgoing buffer — fill up.
// Control-lane messages are never refused.  Bandwidth is unlimited: there is
// no per-byte service time, only propagation delay (§5.3: "unlimited
// bandwidth in order not to be a limiting factor").
//
// Representation (DESIGN.md §2): attach() assigns each ProcessId a dense
// index; links live in per-sender rows of lazily allocated slots
// (links_[from_idx][to_idx]), and the endpoint / crash / drain-observer
// tables are dense vectors too.  Link access on the send/receive/purge path
// is two dense indexations — no ordered-map walk — and a whole sender row
// is contiguous, so multicast() resolves the sender once and fans out
// cache-friendly.  A link is materialized on first use: an n-member group
// costs O(n x active peers) links, not an eager n² (each Link holds two
// deques, which at n=1024 would otherwise allocate gigabytes before the
// first message), and attach() is O(1) instead of an O(n²) re-stride.
//
// Semantic purging of outgoing buffers (the sender-side half of the paper's
// buffer purging, detailed in the companion work [22] referenced from §3.3)
// is exposed via purge_outgoing() and, for senders whose data-lane queues
// are ordered by Message::order_key, the windowed purge_outgoing_window().
// The victim predicates are templates on the concrete fast path (no
// std::function allocation on the fan-out path); the Transport overrides
// funnel through the same code with a two-word util::FunctionRef.
//
// Byte accounting: every enqueue records the message's encoded size
// (wire_size(), contract-checked against net::Codec at every encode site),
// so bytes_sent / bytes_delivered / bytes_purged are measured wire bytes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "net/message.hpp"
#include "net/transport.hpp"
#include "net/types.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "util/contracts.hpp"

namespace svs::net {

class Network final : public Transport {
 public:
  struct Config {
    /// One-way propagation delay applied to every message.
    sim::Duration delay = sim::Duration::millis(1);
    /// Extra uniformly distributed jitter in [0, jitter] added per message.
    /// FIFO order is preserved regardless (arrival times are monotone per
    /// link lane).
    sim::Duration jitter = sim::Duration::zero();
    std::uint64_t seed = 0x5eed;
  };

  Network(sim::Simulator& simulator, Config config);

  /// Registers the endpoint for a process and assigns it the next dense
  /// index.  Must be called before any send involving `id`.  O(1): links
  /// are materialized lazily on first use, so attaching never moves
  /// queued traffic.
  void attach(ProcessId id, Endpoint& endpoint) override;

  /// Enqueues a message from -> to.  No-op if the sender has crashed.
  /// Self-sends are allowed (they traverse a loopback link with the same
  /// delay), which keeps broadcast loops in upper layers uniform.
  void send(ProcessId from, ProcessId to, MessagePtr message,
            Lane lane) override;

  /// Fan-out send: enqueues `message` from -> every destination, in order.
  /// The sender row is resolved once; per destination the cost is one dense
  /// index lookup and one queue push.  Equivalent to the send() loop,
  /// including per-destination jitter draws.  With `skip_self` (the data
  /// fan-out convention) `from` itself is skipped, so callers can pass a
  /// whole view membership; without it a loopback copy is enqueued in the
  /// destination's position (the INIT/PRED broadcast convention).
  void multicast(ProcessId from, std::span<const ProcessId> destinations,
                 const MessagePtr& message, Lane lane,
                 bool skip_self = true) override;

  /// Marks a process crashed (crash-stop): it stops receiving (messages
  /// addressed to it are dropped on arrival) and its future sends are
  /// ignored.  Messages it already sent keep flowing — a real crashed host's
  /// packets already on the wire still arrive.
  void crash(ProcessId id) override;

  /// Registers an observer invoked (synchronously) whenever a process
  /// crashes.  Used by oracle failure detectors.
  void subscribe_crash(
      std::function<void(ProcessId, sim::TimePoint)> observer) override;

  [[nodiscard]] bool is_crashed(ProcessId id) const override;

  /// Virtual time at which `id` crashed, if it did (used by the oracle
  /// failure detector).
  [[nodiscard]] std::optional<sim::TimePoint> crash_time(
      ProcessId id) const override;

  /// Signals that `to` has freed buffer space: all links stalled on `to`
  /// retry their head message.
  void resume(ProcessId to) override;

  /// Registers an observer fired whenever an outgoing data-lane backlog of
  /// `from` shrinks (delivery accepted, purge, or drop).  Senders use it to
  /// wake blocked producers.
  void subscribe_backlog_drain(ProcessId from,
                               std::function<void()> observer) override;

  /// Number of data-lane messages queued from -> to (the sender's outgoing
  /// buffer occupancy towards that destination).
  [[nodiscard]] std::size_t data_backlog(ProcessId from,
                                         ProcessId to) const override;

  /// Removes data-lane messages queued from `from` (to every destination)
  /// for which `victim` returns true.  Returns the number removed.  This is
  /// sender-side semantic purging: only messages not yet accepted by the
  /// receiver can be removed.
  template <typename Victim>
    requires(!std::is_same_v<std::remove_cvref_t<Victim>, VictimRef>)
  std::size_t purge_outgoing(ProcessId from, Victim&& victim) {
    const std::uint32_t fi = index_of(from);
    std::size_t total = 0;
    auto& row = links_[fi];  // never-used links hold nothing to purge
    for (std::uint32_t ti = 0; ti < row.size(); ++ti) {
      if (row[ti] == nullptr) continue;
      total += erase_from_link(*row[ti], fi, ti, victim,
                               /*count_as_purged=*/true);
    }
    return total;
  }
  std::size_t purge_outgoing(ProcessId from, VictimRef victim) override {
    return purge_outgoing(
        from, [&victim](const MessagePtr& m) { return victim(m); });
  }

  /// As above but restricted to one destination.
  template <typename Victim>
  std::size_t purge_outgoing_to(ProcessId from, ProcessId to,
                                Victim&& victim) {
    const std::uint32_t fi = index_of(from);
    const std::uint32_t ti = index_of(to);
    Link* const l = peek_link(fi, ti);
    if (l == nullptr) return 0;
    return erase_from_link(*l, fi, ti, victim, /*count_as_purged=*/true);
  }

  /// Windowed sender-side purge (DESIGN.md §2): visits only the queued
  /// data-lane messages whose order key lies in [floor_key, below_key),
  /// located by binary search — the per-sender relation fast path, where
  /// `below_key` is the covering message's seq and `floor_key` its
  /// Relation::coverage_floor.  Precondition: the from -> to data queue is
  /// non-decreasing in Message::order_key (true for protocol senders, which
  /// emit their own seqs in order).  Returns the number removed.
  template <typename Victim>
    requires(!std::is_same_v<std::remove_cvref_t<Victim>, VictimRef>)
  std::size_t purge_outgoing_window(ProcessId from, ProcessId to,
                                    std::uint64_t floor_key,
                                    std::uint64_t below_key, Victim&& victim) {
    if (floor_key >= below_key) return 0;
    const std::uint32_t fi = index_of(from);
    const std::uint32_t ti = index_of(to);
    Link* const lp = peek_link(fi, ti);
    if (lp == nullptr) return 0;
    const LinkRefScope scope(*this);
    Link& l = *lp;
    auto& q = l.queue[lane_index(Lane::data)];
    const auto [lo, hi] = window_of(q, floor_key, below_key);
    if (lo == hi) return 0;
    stats_.purge_window_scanned += static_cast<std::uint64_t>(hi - lo);

    const bool head_scheduled = l.pending[lane_index(Lane::data)].valid();
    const Message* head = q.front().message.get();

    // Compact [lo, hi) in place: only the window and the tail shift.
    auto keep = lo;
    std::uint64_t removed_bytes = 0;
    for (auto it = lo; it != hi; ++it) {
      if (victim(it->message)) {
        removed_bytes += it->message->wire_size();
        continue;
      }
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
    const auto removed = static_cast<std::size_t>(hi - keep);
    if (removed == 0) return 0;
    q.erase(keep, hi);
    stats_.purged_outgoing += removed;
    stats_.bytes_purged += removed_bytes;
    notify_drain(fi);
    reaim_if_head_removed(l, fi, ti, head_scheduled, head);
    return removed;
  }
  std::size_t purge_outgoing_window(ProcessId from, ProcessId to,
                                    std::uint64_t floor_key,
                                    std::uint64_t below_key,
                                    VictimRef victim) override {
    return purge_outgoing_window(
        from, to, floor_key, below_key,
        [&victim](const MessagePtr& m) { return victim(m); });
  }

  /// Number of messages purge_outgoing_window would remove, without
  /// removing them (the flow-control admission pre-check of t2).
  template <typename Pred>
    requires(!std::is_same_v<std::remove_cvref_t<Pred>, VictimRef>)
  std::size_t count_outgoing_window(ProcessId from, ProcessId to,
                                    std::uint64_t floor_key,
                                    std::uint64_t below_key, Pred&& pred) {
    if (floor_key >= below_key) return 0;
    const std::uint32_t fi = index_of(from);
    const std::uint32_t ti = index_of(to);
    Link* const lp = peek_link(fi, ti);
    if (lp == nullptr) return 0;
    const LinkRefScope scope(*this);
    auto& q = lp->queue[lane_index(Lane::data)];
    const auto [lo, hi] = window_of(q, floor_key, below_key);
    stats_.purge_window_scanned += static_cast<std::uint64_t>(hi - lo);
    std::size_t count = 0;
    for (auto it = lo; it != hi; ++it) {
      if (pred(it->message)) ++count;
    }
    return count;
  }
  std::size_t count_outgoing_window(ProcessId from, ProcessId to,
                                    std::uint64_t floor_key,
                                    std::uint64_t below_key,
                                    VictimRef pred) override {
    return count_outgoing_window(
        from, to, floor_key, below_key,
        [&pred](const MessagePtr& m) { return pred(m); });
  }

  /// Drops every queued data-lane message from -> * matching `victim`.
  /// Unlike purge_outgoing this is not counted as semantic purging; it is
  /// used at view installation to discard messages of superseded views.
  template <typename Victim>
    requires(!std::is_same_v<std::remove_cvref_t<Victim>, VictimRef>)
  std::size_t drop_outgoing(ProcessId from, Victim&& victim) {
    const std::uint32_t fi = index_of(from);
    std::size_t total = 0;
    auto& row = links_[fi];
    for (std::uint32_t ti = 0; ti < row.size(); ++ti) {
      if (row[ti] == nullptr) continue;
      total += erase_from_link(*row[ti], fi, ti, victim,
                               /*count_as_purged=*/false);
    }
    return total;
  }
  std::size_t drop_outgoing(ProcessId from, VictimRef victim) override {
    return drop_outgoing(
        from, [&victim](const MessagePtr& m) { return victim(m); });
  }

  /// Adds `extra` to the propagation delay of link from -> to (simulated
  /// network perturbation).  Pass zero to clear.
  void set_link_slowdown(ProcessId from, ProcessId to,
                         sim::Duration extra) override;

  /// Fault-injection hook (fault_injector.hpp): consulted once per enqueued
  /// message per destination (extra delay / duplication / drop) and before
  /// every data-lane delivery attempt (receiver-pause stalls).  FIFO order
  /// survives any injected delay (ready times are clamped monotone per
  /// lane).  Pass nullptr to clear.
  void set_fault_injector(FaultInjector* injector) override {
    injector_ = injector;
  }

  /// Credits wire bytes saved by a delta-encoded gossip (core-layer
  /// telemetry surfaced with the other network counters).
  void note_gossip_bytes_saved(std::uint64_t bytes) override {
    stats_.gossip_bytes_saved += bytes;
  }

  [[nodiscard]] const NetworkStats& stats() const override { return stats_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  /// Number of attached processes (the dense registry's size).
  [[nodiscard]] std::uint32_t size() const override {
    return static_cast<std::uint32_t>(endpoints_.size());
  }

 private:
  // Byte counters re-derive wire_size() from the message at delivery/purge
  // time instead of caching it here: a fourth word would push the entry
  // from 32 to 40 bytes and measurably slow the flood hot path, while the
  // wire_size() call is one predicted virtual dispatch on paths that
  // already touch the message object.
  struct QueuedMessage {
    MessagePtr message;
    sim::TimePoint ready;     // earliest acceptance-attempt time
    std::uint64_t order_key;  // cached Message::order_key (windowed purges)
  };

  struct Link {
    std::deque<QueuedMessage> queue[2];  // indexed by Lane
    sim::TimePoint last_ready[2] = {};   // monotone per lane (FIFO)
    bool stalled = false;                // data lane refused; waiting resume
    sim::EventId pending[2] = {};        // scheduled attempt per lane
    bool in_attempt[2] = {false, false};  // delivery running (re-entrancy)
    sim::Duration slowdown = sim::Duration::zero();
  };

  static constexpr int lane_index(Lane lane) {
    return lane == Lane::data ? 0 : 1;
  }

  /// Dense index of an attached process; contract violation if unknown.
  [[nodiscard]] std::uint32_t index_of(ProcessId id) const {
    const auto raw = static_cast<std::size_t>(id.value());
    SVS_REQUIRE(raw < dense_.size() && dense_[raw] >= 0,
                "process not attached");
    return static_cast<std::uint32_t>(dense_[raw]);
  }
  /// As index_of but returns nullopt instead of failing (query paths).
  [[nodiscard]] std::optional<std::uint32_t> find_index(ProcessId id) const {
    const auto raw = static_cast<std::size_t>(id.value());
    if (raw >= dense_.size() || dense_[raw] < 0) return std::nullopt;
    return static_cast<std::uint32_t>(dense_[raw]);
  }

  /// The [lo, hi) subrange of a data queue with order keys in
  /// [floor_key, below_key), by binary search (queue keys non-decreasing).
  static std::pair<std::deque<QueuedMessage>::iterator,
                   std::deque<QueuedMessage>::iterator>
  window_of(std::deque<QueuedMessage>& q, std::uint64_t floor_key,
            std::uint64_t below_key) {
    auto lo = std::partition_point(
        q.begin(), q.end(),
        [&](const QueuedMessage& qm) { return qm.order_key < floor_key; });
    auto hi = std::partition_point(
        lo, q.end(),
        [&](const QueuedMessage& qm) { return qm.order_key < below_key; });
    return {lo, hi};
  }

  /// Shared epilogue of every erase path: if the scheduled head was
  /// removed, re-aim the pending attempt at the new head.
  void reaim_if_head_removed(Link& l, std::uint32_t fi, std::uint32_t ti,
                             bool head_scheduled, const Message* old_head);

  /// Marks a region that holds references into the link table.  Links are
  /// heap-stable, but attach() still refuses to run while any such region
  /// is active — delivery handlers, purge victims and drain observers must
  /// not attach synchronously (defer to a simulator event instead), which
  /// keeps mid-delivery membership mutations out of the model.
  class LinkRefScope {
   public:
    explicit LinkRefScope(const Network& network) : network_(network) {
      ++network_.link_refs_held_;
    }
    ~LinkRefScope() { --network_.link_refs_held_; }
    LinkRefScope(const LinkRefScope&) = delete;
    LinkRefScope& operator=(const LinkRefScope&) = delete;

   private:
    const Network& network_;
  };
  friend class LinkRefScope;

  template <typename Victim>
  std::size_t erase_from_link(Link& l, std::uint32_t fi, std::uint32_t ti,
                              Victim&& victim, bool count_as_purged) {
    const LinkRefScope scope(*this);
    auto& q = l.queue[lane_index(Lane::data)];
    const std::size_t before = q.size();
    if (before == 0) return 0;
    const bool head_scheduled = l.pending[lane_index(Lane::data)].valid();
    const Message* head = q.front().message.get();

    std::uint64_t removed_bytes = 0;
    std::erase_if(q, [&](const QueuedMessage& qm) {
      if (!victim(qm.message)) return false;
      removed_bytes += qm.message->wire_size();
      return true;
    });

    const std::size_t removed = before - q.size();
    if (removed == 0) return 0;
    if (count_as_purged) {
      stats_.purged_outgoing += removed;
      stats_.bytes_purged += removed_bytes;
    }
    notify_drain(fi);
    reaim_if_head_removed(l, fi, ti, head_scheduled, head);
    return removed;
  }

  /// The link from -> to, materialized on first use.
  [[nodiscard]] Link& link_at(std::uint32_t fi, std::uint32_t ti) {
    auto& row = links_[fi];
    if (row.size() < size()) row.resize(size());
    auto& slot = row[ti];
    if (slot == nullptr) slot = std::make_unique<Link>();
    return *slot;
  }
  /// The link from -> to if it was ever used, else null (query paths: a
  /// never-used link is indistinguishable from an empty one).
  [[nodiscard]] Link* peek_link(std::uint32_t fi, std::uint32_t ti) const {
    const auto& row = links_[fi];
    return ti < row.size() ? row[ti].get() : nullptr;
  }

  void enqueue(std::uint32_t fi, std::uint32_t ti, Link& l,
               MessagePtr message, Lane lane, std::size_t wire_bytes);
  void schedule_attempt(std::uint32_t fi, std::uint32_t ti, Link& l,
                        Lane lane);
  void attempt(std::uint32_t fi, std::uint32_t ti, Lane lane);
  void notify_drain(std::uint32_t fi);
  /// Injected receiver pause: stalls the link and arms one wake-up event
  /// per receiver per pause window (idempotent across the n stalling links).
  void arm_pause_wakeup(std::uint32_t ti, sim::TimePoint until);

  sim::Simulator& sim_;
  Config config_;
  sim::Rng rng_;

  // Dense process registry: attach order assigns indices 0..n-1.
  std::vector<Endpoint*> endpoints_;   // dense idx -> endpoint
  std::vector<ProcessId> pid_of_;      // dense idx -> id
  std::vector<std::int32_t> dense_;    // raw id -> dense idx (-1 unattached)
  // links_[from_idx][to_idx]; slots materialize on first use (null =
  // never-used link, treated as empty by every query path).
  std::vector<std::vector<std::unique_ptr<Link>>> links_;
  struct CrashRecord {
    bool crashed = false;
    sim::TimePoint at = {};
  };
  std::vector<CrashRecord> crash_;     // dense idx
  // Per receiver: latest pause wake-up already scheduled (origin = none).
  std::vector<sim::TimePoint> pause_wakeup_;  // dense idx
  std::vector<std::vector<std::function<void()>>> drain_observers_;  // idx
  std::vector<std::function<void(ProcessId, sim::TimePoint)>> crash_observers_;
  NetworkStats stats_;
  FaultInjector* injector_ = nullptr;  // not owned; nullable
  mutable std::uint32_t link_refs_held_ = 0;  // active LinkRefScopes
};

}  // namespace svs::net
