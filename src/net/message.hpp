// Transport-level message abstraction.
//
// The simulation passes messages by shared pointer (zero-copy, like a real
// stack passing refcounted buffers), but every message reports an estimated
// wire size so experiments can account for encoded bytes where it matters
// (§4.2's compactness comparison).
//
// Every message carries a MessageType tag so receivers dispatch with a
// switch instead of a chain of dynamic_pointer_cast probes — one byte on
// the wire (real stacks encode exactly such a tag) buys an RTTI-free hot
// path.  Data messages additionally expose an order key (the sender's
// sequence number): outgoing data-lane queues are ordered by it, which is
// what lets the network run windowed sender-side purges without knowing the
// protocol's message classes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/bytes.hpp"

namespace svs::net {

/// A refcounted, immutable wire frame — the encoded bytes of one message,
/// shared across every destination, retry and duplicate that ships it
/// (DESIGN.md §8: the frame is encoded at most once per message).
using FramePtr = std::shared_ptr<const util::Bytes>;

/// Wire-level dispatch tag.  `other` covers traffic the core protocol does
/// not recognise (routed to the control sink, e.g. test messages).
enum class MessageType : std::uint8_t {
  other = 0,
  data,              // core::DataMessage
  init,              // core::InitMessage
  pred,              // core::PredMessage
  stability,         // core::StabilityMessage
  consensus,         // consensus::ConsensusMessage
  heartbeat,         // fd::HeartbeatMessage
  swim_ping,         // fd::SwimPingMessage
  swim_ping_req,     // fd::SwimPingReqMessage
  swim_ack,          // fd::SwimAckMessage
  stability_digest,  // core::StabilityDigestMessage
};

/// Base class for everything that travels through the network.
class Message {
 public:
  Message() = default;
  explicit Message(MessageType type, std::uint64_t order_key = 0)
      : type_(type), order_key_(order_key) {}
  Message(const Message&) = delete;
  Message& operator=(const Message&) = delete;
  virtual ~Message() = default;

  /// Exact size in bytes when encoded for the wire — the number of bytes
  /// net::Codec writes, asserted against the actual encoding at every
  /// encode site (DESIGN.md §6).  Computed once per message and cached:
  /// messages are immutable, and byte accounting touches every delivery,
  /// so the fan-out shares one computation instead of paying a walk over
  /// nested structures per destination.
  [[nodiscard]] std::size_t wire_size() const {
    if (wire_size_cache_ == 0) wire_size_cache_ = compute_wire_size();
    return wire_size_cache_;
  }

  /// Dispatch tag; receivers switch on it instead of RTTI-probing.
  [[nodiscard]] MessageType type() const { return type_; }

  /// Position of this message in its sender's data-lane FIFO order (the
  /// sender's sequence number for data messages, 0 otherwise).  Data-lane
  /// queues are non-decreasing in this key, enabling windowed purges.
  [[nodiscard]] std::uint64_t order_key() const { return order_key_; }

  /// True once Codec::shared_frame has encoded (and cached) this message's
  /// wire frame — telemetry hook for the encode-once counters.
  [[nodiscard]] bool frame_cached() const { return frame_cache_ != nullptr; }

 protected:
  /// The exact encoded size; every concrete message implements this from
  /// the same arithmetic the codec uses.  Called at most once per object
  /// (via the wire_size() cache).
  [[nodiscard]] virtual std::size_t compute_wire_size() const = 0;

 private:
  friend class Codec;  // fills frame_cache_ on the first shared_frame()

  MessageType type_ = MessageType::other;
  std::uint64_t order_key_ = 0;
  // 0 = not yet computed (no real message encodes to zero bytes: the type
  // tag alone is one byte).  Messages are confined to one thread at a time
  // (the loopback wire hands decoded objects across a mutex), so a plain
  // mutable cell is safe.
  mutable std::size_t wire_size_cache_ = 0;
  // The encode-once frame (null until first needed).  Same confinement
  // argument as above: only the owning protocol thread fills or reads the
  // cell; wire threads see the immutable Bytes through their own FramePtr
  // copy, never this field.
  mutable FramePtr frame_cache_;
};

using MessagePtr = std::shared_ptr<const Message>;

/// Messages travel on one of two FIFO lanes per link.
///
/// The data lane is subject to flow control (a full receiver refuses it and
/// it backs up into the sender's outgoing buffer).  The control lane carries
/// INIT/PRED/consensus/heartbeat traffic and is never refused: §5.3 requires
/// the protocol to "always reserve separate buffer space for control
/// information", and Figure 1's guards assume a blocked process still
/// receives view-change messages.  See DESIGN.md §3(1).
enum class Lane : std::uint8_t { data, control };

}  // namespace svs::net
