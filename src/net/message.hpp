// Transport-level message abstraction.
//
// The simulation passes messages by shared pointer (zero-copy, like a real
// stack passing refcounted buffers), but every message reports an estimated
// wire size so experiments can account for encoded bytes where it matters
// (§4.2's compactness comparison).
#pragma once

#include <cstddef>
#include <memory>

namespace svs::net {

/// Base class for everything that travels through the network.
class Message {
 public:
  Message() = default;
  Message(const Message&) = delete;
  Message& operator=(const Message&) = delete;
  virtual ~Message() = default;

  /// Estimated size in bytes when encoded for the wire.
  [[nodiscard]] virtual std::size_t wire_size() const = 0;
};

using MessagePtr = std::shared_ptr<const Message>;

/// Messages travel on one of two FIFO lanes per link.
///
/// The data lane is subject to flow control (a full receiver refuses it and
/// it backs up into the sender's outgoing buffer).  The control lane carries
/// INIT/PRED/consensus/heartbeat traffic and is never refused: §5.3 requires
/// the protocol to "always reserve separate buffer space for control
/// information", and Figure 1's guards assume a blocked process still
/// receives view-change messages.  See DESIGN.md §3(1).
enum class Lane : std::uint8_t { data, control };

}  // namespace svs::net
