// Thin RAII wrapper over a non-blocking IPv4 UDP socket bound to localhost.
//
// The UDP transport (udp_transport.hpp) only ever talks 127.0.0.1: the
// multi-process harness deploys every group member on one host and
// addresses peers by port, so the socket surface is deliberately narrow —
// bind loopback, sendto a port, non-blocking recv, poll for readability.
// Everything that can fail throws util::ContractViolation with errno text;
// there is no partial-failure state to handle at call sites.
//
// SO_RCVBUF is exposed as a knob because shrinking it is the honest way to
// force *kernel-level* datagram loss on loopback (the SO_RCVBUF-starved
// stress mode of tests/udp_test.cpp): the reliability lane must recover
// losses it cannot even observe.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "util/bytes.hpp"

namespace svs::net {

class UdpSocket {
 public:
  /// Creates a non-blocking socket bound to 127.0.0.1:`port` (0 = kernel
  /// picks an ephemeral port).  Throws util::ContractViolation on failure.
  explicit UdpSocket(std::uint16_t port = 0);
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Shrinks (or grows) the kernel receive buffer.  The kernel clamps to
  /// its own minimum; rcvbuf() reports what actually took effect.
  void set_rcvbuf(int bytes);
  [[nodiscard]] int rcvbuf() const;

  /// Sends one datagram to 127.0.0.1:`port`.  Returns false if the kernel
  /// transiently refused it (full send buffer — the caller's retransmission
  /// lane covers it, like any other lost datagram).
  bool send_to(std::uint16_t port, const std::uint8_t* data, std::size_t size);

  /// Non-blocking receive of one datagram into `buffer` (resized to the
  /// datagram's length).  Returns false when nothing is queued.
  bool recv(util::Bytes& buffer);

  /// Blocks until any of `fds` is readable or `timeout_us` elapses.
  /// Returns true when at least one is readable.
  static bool wait_readable(std::span<const int> fds, std::int64_t timeout_us);

 private:
  void close_fd() noexcept;

  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace svs::net
