// Thin RAII wrapper over a non-blocking IPv4 UDP socket bound to localhost.
//
// The UDP transport (udp_transport.hpp) only ever talks 127.0.0.1: the
// multi-process harness deploys every group member on one host and
// addresses peers by port, so the socket surface is deliberately narrow —
// bind loopback, send to a port, non-blocking recv, poll for readability.
// Everything that can fail throws util::ContractViolation with errno text;
// there is no partial-failure state to handle at call sites.
//
// The hot path is batched: send_batch/recv_batch ride sendmmsg/recvmmsg so
// a flood pays ~1 syscall per 64 datagrams instead of 1:1.  Both fall back
// to the portable single-call loop at runtime (first ENOSYS/EOPNOTSUPP, or
// set_use_mmsg(false) for tests), and per-socket IoCounters prove which
// path actually ran.  wait_readable() blocks via ppoll, so µs-precision
// deadlines (the transport's timer wheel ticks in µs) are honoured exactly
// instead of being rounded to whole milliseconds.
//
// SO_RCVBUF is exposed as a knob because shrinking it is the honest way to
// force *kernel-level* datagram loss on loopback (the SO_RCVBUF-starved
// stress mode of tests/udp_test.cpp): the reliability lane must recover
// losses it cannot even observe.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <utility>

#include "util/bytes.hpp"

namespace svs::net {

/// One outbound datagram for send_batch: a destination port plus a view of
/// the encoded bytes (valid only for the duration of the call).
struct OutDatagram {
  std::uint16_t port = 0;
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
};

/// Per-socket kernel I/O accounting.  send/recv_syscalls count every trip
/// into the kernel; the mmsg vs single split proves which path ran.
struct IoCounters {
  std::uint64_t send_syscalls = 0;
  std::uint64_t recv_syscalls = 0;
  std::uint64_t mmsg_sends = 0;    // sendmmsg calls
  std::uint64_t mmsg_recvs = 0;    // recvmmsg calls
  std::uint64_t single_sends = 0;  // sendto calls
  std::uint64_t single_recvs = 0;  // recv calls
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t refused_drops = 0;  // ECONNREFUSED/EPERM, dropped as loss
};

/// Fixed-capacity receive ring for recv_batch: the socket fills the pooled
/// 64 KiB buffers in place and the transport decodes straight out of them —
/// no per-datagram Bytes copy.  Buffers are allocated lazily on first fill
/// and reused for the life of the ring.
class RecvRing {
 public:
  explicit RecvRing(std::size_t capacity = 32);

  [[nodiscard]] std::size_t capacity() const { return buffers_.size(); }
  /// Datagrams filled by the last recv_batch.
  [[nodiscard]] std::size_t count() const { return count_; }
  /// View of the i-th received datagram; valid until the next recv_batch.
  [[nodiscard]] std::span<const std::uint8_t> datagram(std::size_t i) const;

 private:
  friend class UdpSocket;
  std::vector<util::Bytes> buffers_;
  std::vector<std::size_t> lengths_;
  std::size_t count_ = 0;
};

class UdpSocket {
 public:
  /// Creates a non-blocking socket bound to 127.0.0.1:`port` (0 = kernel
  /// picks an ephemeral port).  Throws util::ContractViolation on failure.
  explicit UdpSocket(std::uint16_t port = 0);
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Shrinks (or grows) the kernel receive buffer.  The kernel clamps to
  /// its own minimum; rcvbuf() reports what actually took effect.
  void set_rcvbuf(int bytes);
  [[nodiscard]] int rcvbuf() const;

  /// Sends one datagram to 127.0.0.1:`port`.  Returns false if the kernel
  /// transiently refused it (full send buffer — the caller's retransmission
  /// lane covers it, like any other lost datagram).
  bool send_to(std::uint16_t port, const std::uint8_t* data, std::size_t size);

  /// Sends `items` strictly in order, batching up to 64 per sendmmsg.
  /// `sent` counts consumed items: accepted by the kernel, or refused
  /// (ECONNREFUSED/EPERM) and dropped as ordinary datagram loss.  Returns
  /// false when the kernel blocked (EAGAIN/ENOBUFS): items[sent:] remain
  /// unsent and a later call resumes from the tail without reordering.
  bool send_batch(std::span<const OutDatagram> items, std::size_t& sent);

  /// Non-blocking receive of one datagram into `buffer` (resized to the
  /// datagram's length).  Returns false when nothing is queued.
  bool recv(util::Bytes& buffer);

  /// Fills `ring` from the socket with one recvmmsg (non-blocking) and
  /// returns the datagram count.  A return shorter than the ring capacity
  /// means the socket is drained — no extra probe syscall needed.
  std::size_t recv_batch(RecvRing& ring);

  [[nodiscard]] const IoCounters& io_counters() const { return counters_; }

  /// Forces the portable single-call path (fallback-equivalence tests and
  /// kernels without sendmmsg/recvmmsg — the first ENOSYS flips it too).
  void set_use_mmsg(bool on) { use_mmsg_ = on; }
  [[nodiscard]] bool use_mmsg() const { return use_mmsg_; }

  /// Blocks until any of `fds` is readable or `timeout_us` elapses, with
  /// microsecond precision (ppoll).  Returns true when at least one is
  /// readable.
  static bool wait_readable(std::span<const int> fds, std::int64_t timeout_us);

 private:
  enum class SendResult { ok, blocked, refused };
  SendResult send_one(std::uint16_t port, const std::uint8_t* data,
                      std::size_t size);
  void close_fd() noexcept;

  int fd_ = -1;
  std::uint16_t port_ = 0;
  bool use_mmsg_ = true;
  IoCounters counters_;
};

/// Per-process FIFO of encoded datagrams awaiting kernel acceptance.  The
/// transport stages everything here and flushes through send_batch; when
/// the kernel blocks mid-batch the unsent tail stays queued in order, so a
/// link's frames are never reordered by backpressure.
class SendQueue {
 public:
  /// Generous ceiling: beyond it the *newest* datagram is dropped (counted)
  /// — the retransmission lane recovers it like any other loss.
  static constexpr std::size_t kMaxQueue = 8192;

  void push(std::uint16_t port, util::Bytes payload);

  /// Drains in order through `send` (the send_batch signature).  Returns
  /// true when fully drained, false when the sender blocked.  Templated so
  /// tests can drive partial-send resume without a real kernel.
  template <typename Sender>
  bool flush_with(Sender&& send) {
    while (!items_.empty()) {
      OutDatagram batch[kFlushChunk];
      const std::size_t n = std::min(items_.size(), kFlushChunk);
      for (std::size_t i = 0; i < n; ++i) {
        const auto& [port, payload] = items_[i];
        batch[i] = OutDatagram{port, payload.data(), payload.size()};
      }
      std::size_t sent = 0;
      const bool drained = send(std::span<const OutDatagram>(batch, n), sent);
      items_.erase(items_.begin(),
                   items_.begin() + static_cast<std::ptrdiff_t>(sent));
      if (!drained) return false;
    }
    return true;
  }

  bool flush(UdpSocket& socket) {
    return flush_with([&socket](std::span<const OutDatagram> items,
                                std::size_t& sent) {
      return socket.send_batch(items, sent);
    });
  }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::uint64_t overflow_drops() const { return overflow_drops_; }

 private:
  static constexpr std::size_t kFlushChunk = 64;
  std::deque<std::pair<std::uint16_t, util::Bytes>> items_;
  std::uint64_t overflow_drops_ = 0;
};

}  // namespace svs::net
