// Fault-injection hooks on the Transport surface (DESIGN.md §7).
//
// A FaultInjector is consulted by the link layer at two points:
//
//   * on_send      — once per enqueued message per destination, before the
//     message enters the link queue.  It returns how many copies to enqueue
//     (1 = normal, 2+ = duplication, 0 = out-of-model silent drop) and how
//     much extra propagation delay to add.  Partitions are expressed here
//     as delay-until-heal: messages sent during the outage window are held
//     and arrive after it, which preserves the reliable-FIFO channel model
//     (the link layer already clamps ready times monotone per lane).
//   * receive_paused_until — before a data-lane delivery attempt.  A
//     non-empty result stalls every link into that receiver until the
//     returned time (backpressure, not loss): the network-visible face of a
//     consumer that completely stops.
//
// Both Transport backends honor the hook: net::Network consults it
// directly, and net::ThreadedLoopback forwards to its inner Network, so an
// injected fault schedule produces byte-identical runs on both.
//
// PlannedFaultInjector interprets a sim::FaultPlan.  Each fault draws from
// its own rng stream (seeded from (plan.seed, fault.id)), so masking plan
// entries out — the shrinker's first move — never perturbs the randomness
// of the faults that remain.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/message.hpp"
#include "net/types.hpp"
#include "sim/fault_plan.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace svs::sim {
class Simulator;
}

namespace svs::net {

class Transport;

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  struct SendFault {
    /// Extra propagation delay; FIFO order is preserved by the link layer.
    sim::Duration extra_delay = sim::Duration::zero();
    /// Copies to enqueue: 1 = deliver normally, 2+ = duplicate, 0 = drop
    /// (out-of-model: breaks the reliable-channel assumption).
    std::uint32_t copies = 1;
    /// Lost transmissions recovered by retransmission (FaultKind::loss):
    /// their recovery latency is already folded into extra_delay; this count
    /// only feeds NetworkStats::injected_losses.
    std::uint32_t losses = 0;
  };

  /// Consulted once per (message, destination) at enqueue time.
  virtual SendFault on_send(ProcessId from, ProcessId to, Lane lane,
                            const Message& message, sim::TimePoint now) = 0;

  /// If `to` must not accept data-lane traffic at `now`, the time the pause
  /// ends (the link layer stalls and re-attempts then).
  [[nodiscard]] virtual std::optional<sim::TimePoint> receive_paused_until(
      ProcessId to, sim::TimePoint now) = 0;
};

/// Applies the link-level faults of a sim::FaultPlan (jitter, partitions,
/// duplication, receiver pauses, hostile drops).  Crash faults are not the
/// link layer's business — schedule them with schedule_crashes().
///
/// Stateful (per-fault rngs and drop counters): construct a fresh injector
/// per run to replay a plan deterministically.
class PlannedFaultInjector final : public FaultInjector {
 public:
  explicit PlannedFaultInjector(sim::FaultPlan plan);

  SendFault on_send(ProcessId from, ProcessId to, Lane lane,
                    const Message& message, sim::TimePoint now) override;
  [[nodiscard]] std::optional<sim::TimePoint> receive_paused_until(
      ProcessId to, sim::TimePoint now) override;

  [[nodiscard]] const sim::FaultPlan& plan() const { return plan_; }

 private:
  struct Armed {
    sim::FaultSpec spec;
    sim::Rng rng;                  // this fault's private stream
    std::uint64_t data_seen = 0;   // drop_one: data messages seen on link
  };

  sim::FaultPlan plan_;
  std::vector<Armed> armed_;
};

/// Schedules the plan's crash faults on the simulator: at each crash spec's
/// time the transport crash-stops the process.  The transport must outlive
/// the scheduled events (harnesses own both for the whole run).
void schedule_crashes(sim::Simulator& simulator, Transport& transport,
                      const sim::FaultPlan& plan);

}  // namespace svs::net
