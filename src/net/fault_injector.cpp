#include "net/fault_injector.hpp"

#include <algorithm>
#include <utility>

#include "net/transport.hpp"
#include "sim/simulator.hpp"
#include "util/contracts.hpp"

namespace svs::net {
namespace {

/// Link match for directed-link faults (fault endpoints are raw ids).
bool on_link(const sim::FaultSpec& f, ProcessId from, ProcessId to) {
  return f.a == from.value() && f.b == to.value();
}

/// Side-A membership: the mask names raw ids 0..63; anything beyond is
/// side B by definition (FaultPlan::generate caps groups at 64, and a
/// hand-built plan must not silently alias high ids onto low bits).
bool in_side_a(const sim::FaultSpec& f, ProcessId p) {
  return p.value() < 64 && ((f.side_mask >> p.value()) & 1) != 0;
}

/// True when a partition spec severs from -> to at `now`.
bool severs(const sim::FaultSpec& f, ProcessId from, ProcessId to,
            sim::TimePoint now) {
  if (!f.active_at(now)) return false;
  const bool from_a = in_side_a(f, from);
  const bool to_a = in_side_a(f, to);
  if (from_a == to_a) return false;  // same side: unaffected
  return f.symmetric || from_a;      // asymmetric: only A -> B is severed
}

}  // namespace

PlannedFaultInjector::PlannedFaultInjector(sim::FaultPlan plan)
    : plan_(std::move(plan)) {
  armed_.reserve(plan_.faults.size());
  for (const auto& spec : plan_.faults) {
    armed_.push_back(Armed{spec, sim::Rng::stream(plan_.seed, 1 + spec.id), 0});
  }
}

FaultInjector::SendFault PlannedFaultInjector::on_send(ProcessId from,
                                                       ProcessId to, Lane lane,
                                                       const Message& message,
                                                       sim::TimePoint now) {
  (void)message;
  SendFault fault;
  // Drop and duplication compose independently of plan order: a dropped
  // message stays dropped no matter how many duplicate entries follow it.
  bool dropped = false;
  std::uint32_t extra_copies = 0;
  for (auto& armed : armed_) {
    const sim::FaultSpec& f = armed.spec;
    switch (f.kind) {
      case sim::FaultKind::link_jitter:
        if (on_link(f, from, to) && f.active_at(now)) {
          fault.extra_delay += sim::Duration::micros(
              static_cast<std::int64_t>(armed.rng.below(
                  static_cast<std::uint64_t>(f.magnitude.as_micros()) + 1)));
        }
        break;
      case sim::FaultKind::partition:
        if (severs(f, from, to, now)) {
          // Outage with retransmission: hold until heal.  The base link
          // delay still applies on top, so arrival is strictly after heal.
          fault.extra_delay += f.end - now;
        }
        break;
      case sim::FaultKind::duplicate:
        if (lane == Lane::data && on_link(f, from, to) && f.active_at(now) &&
            armed.rng.chance(f.probability)) {
          ++extra_copies;
        }
        break;
      case sim::FaultKind::drop_one:
        if (lane == Lane::data && on_link(f, from, to) && f.active_at(now)) {
          if (++armed.data_seen == f.param) dropped = true;
        }
        break;
      case sim::FaultKind::loss:
        // Reliable-channel loss: the message still arrives, but every lost
        // transmission costs one retransmission timeout.  The number of
        // losses before the first success is geometric in the loss
        // probability.  Self-links are exempt — loopback traffic never
        // crosses the wire.
        if (from != to && f.active_at(now) &&
            (f.a == sim::FaultSpec::kAllLinks || on_link(f, from, to))) {
          const auto lost = static_cast<std::uint32_t>(std::min<std::uint64_t>(
              armed.rng.geometric(1.0 - f.probability), 64));
          fault.losses += lost;
          fault.extra_delay += f.magnitude * static_cast<std::int64_t>(lost);
        }
        break;
      case sim::FaultKind::crash:
      case sim::FaultKind::pause_receiver:
        break;  // not enqueue-time faults
    }
  }
  fault.copies = dropped ? 0 : 1 + extra_copies;
  return fault;
}

std::optional<sim::TimePoint> PlannedFaultInjector::receive_paused_until(
    ProcessId to, sim::TimePoint now) {
  std::optional<sim::TimePoint> until;
  for (const auto& armed : armed_) {
    const sim::FaultSpec& f = armed.spec;
    if (f.kind != sim::FaultKind::pause_receiver) continue;
    if (f.a != to.value() || !f.active_at(now)) continue;
    if (!until.has_value() || f.end > *until) until = f.end;
  }
  return until;
}

void schedule_crashes(sim::Simulator& simulator, Transport& transport,
                      const sim::FaultPlan& plan) {
  for (const auto& f : plan.faults) {
    if (f.kind != sim::FaultKind::crash) continue;
    const ProcessId victim(f.a);
    simulator.schedule_at(std::max(simulator.now(), f.start),
                          [&transport, victim] { transport.crash(victim); });
  }
}

}  // namespace svs::net
