// UDP transport backend: real datagrams under the SVS stack, made reliable
// by a link-level ack/retransmission lane (DESIGN.md §9).
//
// Like net::ThreadedLoopback, UdpTransport *contains* a net::Network: the
// inner network keeps the link discipline the protocol reasons about (FIFO
// order, propagation delay, backpressure, purgeable outgoing buffers, crash
// semantics, fault injection), so runs stay deterministic and the
// cross-backend equivalence suite extends to three backends.  What changes
// is the delivery crossing: where the loopback ships an encoded frame
// across a thread boundary, this backend ships it through the kernel as a
// UDP datagram — which can be lost, duplicated or reordered — and a
// reliable-delivery lane below the SVS layer recovers it:
//
//   * per-(link, lane) sequence numbers assigned at datagram send time;
//   * cumulative + selective acks piggybacked on reverse traffic
//     (net/dgram.hpp), pure ack datagrams otherwise;
//   * retransmission on exponentially backed-off, jittered timeouts;
//   * duplicate suppression at the reception frontier;
//   * a bounded in-flight window with graceful backpressure: a sender that
//     fills the window degrades to blocking (the data-lane refusal the SVS
//     flow control already understands) and *never* silently drops a
//     protocol message.
//
// Reliability sits BELOW the SVS layer on purpose: §3.1 assumes reliable
// FIFO channels, so datagram loss must be repaired before messages enter
// the protocol — the same layering as TCP under a group toolkit.  The SVS
// semantics (purging, view synchrony) then apply to the *sender's outgoing
// buffer* (the inner network's queues, not yet transmitted), which is the
// honest model: bytes already handed to the kernel are on the wire and
// cannot be unsent.
//
// Two deployment modes share the lane machinery:
//
//   * All-local (Group::Backend::udp, tests, equivalence): every attached
//     process gets its own localhost socket and each delivery crossing is a
//     SHADOW crossing — the verdict is computed synchronously in memory
//     (the frame is decoded and handed to the real endpoint at crossing
//     time, so protocol histories stay bit-identical to the sim and
//     loopback backends), while the *same* encoded frame is batched, staged
//     on the reliable link and shipped through the kernel asynchronously.
//     The receiver byte-verifies every arriving frame against a per-link
//     FIFO of the frames recorded at crossing time: the lane's in-order
//     delivery contract is checked on every run, with real loss and real
//     retransmissions, without serializing a kernel round-trip per
//     crossing.  Only the lane counters (retransmissions, duplicate drops,
//     syscall counts) are timing-dependent.
//
//   * Distributed (tools/svs_proc): one local process attaches, remote
//     peers are registered with add_peer(); sends to them stage frames on
//     the reliable link and return immediately (window-gated for the data
//     lane), pump() drains arriving datagrams and due retransmissions, and
//     runtime/real_time.hpp interleaves pumping with the virtual clock.
//     A peer whose link exhausts its retries is declared dead and
//     crash-stopped in the inner network; the heartbeat FD + membership
//     machinery then excludes it (kill -9 becomes a real crash fault).
//
// The hot path is batched end to end: frames coalesce per (peer, lane)
// into multi-frame datagrams (both modes), encoded datagrams queue on a
// per-process SendQueue flushed through sendmmsg, and the receive side
// drains a recvmmsg ring and decodes straight out of its pooled buffers.
// Acks are delayed to the end of each socket drain — one cumulative ack
// per (peer, lane) touched — instead of one per datagram.  All deadlines
// (retransmission, batch flush, zero-window probe, send-queue retry) live
// on a single hierarchical util::TimerWheel with µs ticks: next_deadline
// is a bitmap peek instead of an O(links) scan, and idle waits ppoll with
// µs precision until the earliest wheel deadline.
//
// Datagram loss is injected at the socket boundary (DatagramLossModel,
// seeded per directed link) — satisfying FaultKind::loss for this backend
// with *real* drops recovered by *real* retransmissions, at zero
// virtual-time cost (the in-model recovery latency is added by the shared
// PlannedFaultInjector in the inner network, identically on all backends).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "net/dgram.hpp"
#include "net/network.hpp"
#include "net/transport.hpp"
#include "net/udp.hpp"
#include "sim/random.hpp"
#include "util/timer_wheel.hpp"

namespace svs::net {

/// Counters of the reliable-delivery lane (per transport, both modes).
/// These are *real-time* measurements — unlike NetworkStats they depend on
/// kernel scheduling, so equivalence tests may assert them non-zero or
/// zero, never equal across runs.
struct UdpLaneStats {
  std::uint64_t datagrams_sent = 0;      // handed to the send queue (post-loss)
  std::uint64_t datagram_bytes_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t frames_delivered = 0;    // payloads handed up, in link order
  std::uint64_t retransmissions = 0;     // timeout-driven re-sends
  std::uint64_t ack_datagrams = 0;       // pure acks (piggybacks not counted)
  std::uint64_t ack_bytes = 0;
  std::uint64_t duplicate_drops = 0;     // below-frontier / already-seen seqs
  std::uint64_t injected_losses = 0;     // dropped by the DatagramLossModel
  std::uint64_t malformed_datagrams = 0; // decode threw; datagram discarded
  std::uint64_t stray_datagrams = 0;     // wrong addressee / unknown sender
  std::uint64_t link_resets = 0;         // retry budget exhausted; peer dead
  std::uint64_t inbound_stalls = 0;      // data frames parked on a full node
  std::uint64_t zero_window_probes = 0;
  std::uint64_t frame_encodes = 0;       // encode-once telemetry, as loopback
  std::uint64_t frame_reuses = 0;
  std::uint64_t frames_batched = 0;      // frames shipped in multi-frame batches
  std::uint64_t batch_flushes = 0;       // pending-batch flushes (datagrams)
  // Kernel I/O accounting (aggregated from per-socket IoCounters by
  // lane_stats()): the syscall totals the batching exists to shrink, plus
  // the mmsg-vs-single split proving which path ran.
  std::uint64_t syscalls_sent = 0;       // sendmmsg + sendto calls
  std::uint64_t syscalls_recvd = 0;      // recvmmsg + recv calls
  std::uint64_t mmsg_sends = 0;
  std::uint64_t mmsg_recvs = 0;
  std::uint64_t single_sends = 0;
  std::uint64_t single_recvs = 0;
  std::uint64_t wheel_cascades = 0;      // timer-wheel level-to-level moves
  std::uint64_t send_queue_drops = 0;    // SendQueue overflow (drop-newest)

  UdpLaneStats& operator+=(const UdpLaneStats& o) {
    datagrams_sent += o.datagrams_sent;
    datagram_bytes_sent += o.datagram_bytes_sent;
    datagrams_received += o.datagrams_received;
    frames_delivered += o.frames_delivered;
    retransmissions += o.retransmissions;
    ack_datagrams += o.ack_datagrams;
    ack_bytes += o.ack_bytes;
    duplicate_drops += o.duplicate_drops;
    injected_losses += o.injected_losses;
    malformed_datagrams += o.malformed_datagrams;
    stray_datagrams += o.stray_datagrams;
    link_resets += o.link_resets;
    inbound_stalls += o.inbound_stalls;
    zero_window_probes += o.zero_window_probes;
    frame_encodes += o.frame_encodes;
    frame_reuses += o.frame_reuses;
    frames_batched += o.frames_batched;
    batch_flushes += o.batch_flushes;
    syscalls_sent += o.syscalls_sent;
    syscalls_recvd += o.syscalls_recvd;
    mmsg_sends += o.mmsg_sends;
    mmsg_recvs += o.mmsg_recvs;
    single_sends += o.single_sends;
    single_recvs += o.single_recvs;
    wheel_cascades += o.wheel_cascades;
    send_queue_drops += o.send_queue_drops;
    return *this;
  }
};

/// Seeded per-directed-link Bernoulli drops applied at the socket boundary
/// (before sendto).  Each link draws from its own stream, so changing one
/// link's rate never reshuffles another's losses.
class DatagramLossModel {
 public:
  explicit DatagramLossModel(std::uint64_t seed) : seed_(seed) {}

  /// Loss probability for links without an explicit override.
  void set_default_rate(double rate) { default_rate_ = rate; }
  [[nodiscard]] double default_rate() const { return default_rate_; }
  void set_link_rate(std::uint32_t from, std::uint32_t to, double rate);

  /// One draw on the (from -> to) stream; true = drop this datagram.
  [[nodiscard]] bool drop(std::uint32_t from, std::uint32_t to);

 private:
  struct LinkState {
    std::optional<double> rate;
    std::optional<sim::Rng> rng;
  };

  std::uint64_t seed_;
  double default_rate_ = 0.0;
  std::map<std::uint64_t, LinkState> links_;  // (from << 32) | to
};

/// Both halves of one reliable link endpoint for a (peer, lane) pair: the
/// sender half (in-flight window, retransmission deadlines) for traffic we
/// originate, and the receiver half (reception frontier, out-of-order
/// stash) for traffic the peer originates.  Pure state machine — no
/// sockets, no clock; time is passed in as monotonic microseconds — so it
/// unit-tests and benchmarks without a kernel in the loop.
class ReliableLink {
 public:
  struct Config {
    /// Max unacked data frames in flight (also the advertised window).
    std::uint32_t window = 32;
    std::int64_t rto_base_us = 2'000;
    std::int64_t rto_max_us = 250'000;
    /// Retransmissions per frame before the peer is declared dead.
    std::uint32_t max_retries = 60;
  };

  ReliableLink(Config config, sim::Rng rng, UdpLaneStats& stats)
      : config_(config),
        rng_(rng),
        stats_(stats),
        peer_window_(config.window) {}

  // --- sender half ------------------------------------------------------

  /// Room in both the local window and the peer's advertised one.  The
  /// window is counted in FRAMES, not batches: a staged batch of k frames
  /// consumes k slots, so batching never widens the "at most `window`
  /// unacked frames" backpressure contract.
  [[nodiscard]] bool can_send() const {
    return !dead_ && in_flight_frames_ <
                         std::min<std::size_t>(config_.window, peer_window_);
  }
  /// Window slots still open (0 when dead or full).
  [[nodiscard]] std::size_t send_room() const {
    const std::size_t limit =
        std::min<std::size_t>(config_.window, peer_window_);
    return dead_ || in_flight_frames_ >= limit
               ? 0
               : limit - in_flight_frames_;
  }
  /// Unacked frames across all staged batches.
  [[nodiscard]] std::size_t in_flight() const { return in_flight_frames_; }
  [[nodiscard]] bool all_acked() const { return in_flight_.empty(); }
  /// Retry budget exhausted on some frame: the peer is presumed crashed.
  [[nodiscard]] bool dead() const { return dead_; }
  [[nodiscard]] std::uint32_t peer_window() const { return peer_window_; }

  /// Assigns the next link seq to `frame` and arms its first deadline.
  std::uint64_t stage(FramePtr frame, std::int64_t now_us);
  /// Batch form: all frames ride (and are retransmitted/acked) under the
  /// one returned link seq.
  std::uint64_t stage(std::vector<FramePtr> frames, std::int64_t now_us);
  /// The staged frames for `seq`; null if already retired.
  [[nodiscard]] const std::vector<FramePtr>* frames_of(
      std::uint64_t seq) const;
  /// Earliest retransmission deadline (INT64_MAX when nothing in flight).
  [[nodiscard]] std::int64_t next_deadline() const;
  /// Seqs due for retransmission at `now_us`: applies backoff + jitter and
  /// counts them.  A frame out of retries marks the link dead and clears
  /// the in-flight set instead.
  void collect_due(std::int64_t now_us, std::vector<std::uint64_t>& due);
  /// Retires frames covered by `ack` (cum + sacks), adopts the advertised
  /// window.
  void on_ack(const AckBlock& ack);

  // --- receiver half ----------------------------------------------------

  /// Accepts an arriving batch.  False = duplicate (counted, discarded).
  bool accept(std::uint64_t seq, std::vector<util::Bytes> payloads);
  /// Pops the next in-link-order payload, if the frontier reaches it
  /// (batches are flattened in batch order; frames of one batch share its
  /// link seq).
  bool next_ready(std::uint64_t& seq, util::Bytes& payload);
  /// Current ack state (cum + sacks) with the given advertised window.
  [[nodiscard]] AckBlock ack_state(std::uint32_t window) const;
  [[nodiscard]] std::uint64_t frontier() const { return cum_; }

 private:
  struct InFlight {
    std::uint64_t seq = 0;
    std::vector<FramePtr> frames;  // one batch, >= 1 frames
    std::uint32_t retries = 0;
    std::int64_t deadline_us = 0;
    std::int64_t rto_us = 0;
  };

  Config config_;
  sim::Rng rng_;
  UdpLaneStats& stats_;
  std::deque<InFlight> in_flight_;  // ascending seq
  std::size_t in_flight_frames_ = 0;  // sum of batch sizes (window unit)
  std::uint64_t next_seq_ = 1;
  std::uint32_t peer_window_;
  bool dead_ = false;
  // Receiver half: everything <= cum_ received; runs above it stashed.
  std::uint64_t cum_ = 0;
  std::map<std::uint64_t, std::vector<util::Bytes>> out_of_order_;
  std::deque<std::pair<std::uint64_t, util::Bytes>> ready_;
};

class UdpTransport final : public Transport {
 public:
  struct Config {
    /// Inner link discipline (virtual-time delay/jitter), as the other
    /// backends.
    Network::Config network;
    /// Reliable-lane tuning.  The defaults suit the all-local shadow mode;
    /// distributed deployments want a larger rto_base_us (real scheduling
    /// jitter) — tools/svs_proc sets its own.
    ReliableLink::Config link;
    /// Seeds the loss model and the per-link RTO jitter streams.
    std::uint64_t lane_seed = 0x0DD5'0CE7;
    /// Datagram loss probability applied to every link (see loss()).
    double loss_rate = 0.0;
    /// Distributed mode: bind the single local socket eagerly (at
    /// bind_port; 0 = ephemeral) so the pre-protocol join flow can use it.
    bool bind_local = false;
    std::uint16_t bind_port = 0;
    /// If > 0, shrink SO_RCVBUF on every socket (kernel-drop stress mode).
    int rcvbuf_bytes = 0;
    /// Per-destination frame batching (both modes): frames bound for the
    /// same (peer, lane) coalesce into one datagram until the batch
    /// reaches this many payload bytes (soft MTU budget) or
    /// Datagram::kMaxBatchFrames, or until batch_delay_us of real time
    /// passes since the batch opened.  0 disables batching (every frame is
    /// its own datagram, the pre-batching wire behavior).
    std::size_t batch_bytes = 1400;
    std::int64_t batch_delay_us = 200;
    /// sendmmsg/recvmmsg on every socket (false forces the portable
    /// single-call fallback; counters prove which path ran).
    bool use_mmsg = true;
  };

  UdpTransport(sim::Simulator& simulator, Config config);
  ~UdpTransport() override = default;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// All-local mode: creates the process's socket and its delivery-crossing
  /// adapter.  Distributed mode: binds the (single) local endpoint to the
  /// socket created by the constructor.
  void attach(ProcessId id, Endpoint& endpoint) override;

  // --- distributed mode -------------------------------------------------

  /// Declares a remote member reachable at 127.0.0.1:port and registers its
  /// outbound proxy with the inner network.  Call after the constructor
  /// (bind_local = true) and before protocol traffic flows.
  void add_peer(ProcessId id, std::uint16_t port);
  /// Drains arriving datagrams, fires due wheel deadlines and flushes the
  /// send queues; if nothing is pending, waits up to `timeout_us` for a
  /// datagram (capped by the earliest wheel deadline).  Returns the number
  /// of datagrams handled.
  std::size_t pump(std::int64_t timeout_us);
  /// Pre-protocol datagrams (join/roster) seen by pump() are handed here
  /// (the introducer re-sends rosters to late joiners); unset, they count
  /// as stray.
  void set_stray_datagram_handler(std::function<void(const Datagram&)> h) {
    stray_handler_ = std::move(h);
  }

  // --- both modes -------------------------------------------------------

  /// One transport service turn: advance the timer wheel (batch flushes,
  /// retransmissions, probes), drain every socket, flush every send queue;
  /// when nothing was pending, wait up to `timeout_us` (µs-exact ppoll,
  /// capped by the earliest wheel deadline).  The all-local shadow wire is
  /// driven by this — tests drain their shadow traffic with
  /// `while (!links_idle()) service(...)`.  Returns datagrams handled.
  std::size_t service(std::int64_t timeout_us);

  /// Local UDP port of process `id` (distributed mode: the single local
  /// process; all-local mode: any attached process).
  [[nodiscard]] std::uint16_t local_port(ProcessId id) const;
  /// The raw socket of process `id` (join flow, SO_RCVBUF stress).
  [[nodiscard]] UdpSocket& socket_of(ProcessId id);
  /// True when no frame awaits acknowledgement, no batch or send queue
  /// holds undelivered datagrams, and (all-local) every shadow frame has
  /// been wire-verified.
  [[nodiscard]] bool links_idle() const;
  /// Lane counters plus per-socket kernel I/O counters and wheel activity,
  /// aggregated at call time.
  [[nodiscard]] UdpLaneStats lane_stats() const;
  [[nodiscard]] DatagramLossModel& loss() { return loss_; }
  /// The deadline wheel (observability: size, cascade count).
  [[nodiscard]] const util::TimerWheel& wheel() const { return wheel_; }

  // --- Transport surface: link discipline lives in the inner network ----

  void send(ProcessId from, ProcessId to, MessagePtr message,
            Lane lane) override {
    inner_.send(from, to, std::move(message), lane);
  }
  void multicast(ProcessId from, std::span<const ProcessId> destinations,
                 const MessagePtr& message, Lane lane,
                 bool skip_self = true) override {
    inner_.multicast(from, destinations, message, lane, skip_self);
  }
  void crash(ProcessId id) override { inner_.crash(id); }
  void subscribe_crash(
      std::function<void(ProcessId, sim::TimePoint)> observer) override {
    inner_.subscribe_crash(std::move(observer));
  }
  [[nodiscard]] bool is_crashed(ProcessId id) const override {
    return inner_.is_crashed(id);
  }
  [[nodiscard]] std::optional<sim::TimePoint> crash_time(
      ProcessId id) const override {
    return inner_.crash_time(id);
  }
  void resume(ProcessId to) override;
  void subscribe_backlog_drain(ProcessId from,
                               std::function<void()> observer) override {
    inner_.subscribe_backlog_drain(from, std::move(observer));
  }
  [[nodiscard]] std::size_t data_backlog(ProcessId from,
                                         ProcessId to) const override {
    return inner_.data_backlog(from, to);
  }
  std::size_t purge_outgoing(ProcessId from, VictimRef victim) override {
    return inner_.purge_outgoing(from, victim);
  }
  std::size_t purge_outgoing_window(ProcessId from, ProcessId to,
                                    std::uint64_t floor_key,
                                    std::uint64_t below_key,
                                    VictimRef victim) override {
    return inner_.purge_outgoing_window(from, to, floor_key, below_key,
                                        victim);
  }
  std::size_t count_outgoing_window(ProcessId from, ProcessId to,
                                    std::uint64_t floor_key,
                                    std::uint64_t below_key,
                                    VictimRef pred) override {
    return inner_.count_outgoing_window(from, to, floor_key, below_key, pred);
  }
  std::size_t drop_outgoing(ProcessId from, VictimRef victim) override {
    return inner_.drop_outgoing(from, victim);
  }
  void set_link_slowdown(ProcessId from, ProcessId to,
                         sim::Duration extra) override {
    inner_.set_link_slowdown(from, to, extra);
  }
  void set_fault_injector(FaultInjector* injector) override;
  void note_gossip_bytes_saved(std::uint64_t bytes) override {
    inner_.note_gossip_bytes_saved(bytes);
  }
  [[nodiscard]] const NetworkStats& stats() const override {
    return inner_.stats();
  }
  [[nodiscard]] std::uint32_t size() const override { return inner_.size(); }

  /// Monotonic real-time clock (microseconds) shared by the lane machinery
  /// and runtime::RealTimeDriver.
  [[nodiscard]] static std::int64_t mono_us();

 private:
  using LinkKey = std::pair<std::uint32_t, std::uint8_t>;  // (peer, lane)
  using TimerId = util::TimerWheel::TimerId;

  /// A wheel timer handle plus the deadline it was armed at, so re-arming
  /// can keep the earlier of two deadlines without touching the wheel.
  struct ArmedTimer {
    TimerId id = util::TimerWheel::kInvalidTimer;
    std::int64_t deadline_us = 0;
  };

  /// One locally hosted process: its socket, receive ring, send queue,
  /// reliable links and per-link wheel timers.
  struct Proc {
    ProcessId id{0};
    Endpoint* real = nullptr;
    std::size_t index = 0;  // position in procs_ (stable; wheel payloads)
    UdpSocket socket;
    RecvRing ring;
    SendQueue sendq;
    TimerId sendq_timer = util::TimerWheel::kInvalidTimer;
    std::map<LinkKey, std::unique_ptr<ReliableLink>> links;
    /// Per-link retransmission timer: one per link, armed at the link's
    /// earliest deadline (earlier-deadline-wins; a stale early fire is a
    /// harmless re-arm).
    std::map<LinkKey, ArmedTimer> retx_timers;
    /// Zero-window probe timers, per stalled-outbound peer (distributed).
    std::map<std::uint32_t, TimerId> probe_timers;
    /// Shadow-crossing verification (all-local): for each inbound link,
    /// the FIFO of frames recorded at crossing time that the wire must
    /// reproduce byte-for-byte, in order.
    std::map<LinkKey, std::deque<FramePtr>> expected;
    /// Links touched by the current socket drain; one cumulative ack per
    /// entry is sent when the drain ends (delayed acks).
    std::set<LinkKey> ack_pending;
    /// Distributed inbound backpressure: in-order data frames the local
    /// node refused, waiting for resume().
    std::map<std::uint32_t, std::deque<MessagePtr>> stalled;
    /// Per-destination batcher (both modes): frames accumulating towards
    /// one datagram.  `bytes` counts encoded payload cost (frame bytes +
    /// per-frame length varints); the wheel timer is armed when the batch
    /// opens.
    struct PendingBatch {
      std::vector<FramePtr> frames;
      std::size_t bytes = 0;
      TimerId timer = util::TimerWheel::kInvalidTimer;
    };
    std::map<LinkKey, PendingBatch> pending;

    explicit Proc(std::uint16_t port) : socket(port) {}
  };

  /// All-local delivery crossing: interposed at the inner network's
  /// delivery point, like the loopback's WireAdapter.
  class LocalAdapter final : public Endpoint {
   public:
    LocalAdapter(UdpTransport& owner, std::size_t proc_index)
        : owner_(owner), proc_index_(proc_index) {}
    bool on_message(ProcessId from, const MessagePtr& message,
                    Lane lane) override {
      return owner_.shadow_cross(from, proc_index_, message, lane);
    }

   private:
    UdpTransport& owner_;
    std::size_t proc_index_;
  };

  /// Distributed outbound proxy: stands in for a remote peer inside the
  /// inner network; "delivery" means staging the frame on the reliable
  /// link (or refusing, when the window is full — the data-lane stall the
  /// flow control understands).
  class RemoteProxy final : public Endpoint {
   public:
    RemoteProxy(UdpTransport& owner, ProcessId peer)
        : owner_(owner), peer_(peer) {}
    bool on_message(ProcessId from, const MessagePtr& message,
                    Lane lane) override {
      return owner_.async_send(from, peer_, message, lane);
    }

   private:
    UdpTransport& owner_;
    ProcessId peer_;
  };

  [[nodiscard]] Proc& proc_of(ProcessId id);
  [[nodiscard]] const Proc* find_proc(std::uint32_t raw_id) const;
  [[nodiscard]] std::uint16_t port_of(std::uint32_t raw_id) const;
  [[nodiscard]] ReliableLink& link_for(Proc& p, std::uint32_t peer,
                                       std::uint8_t lane);
  /// Advertised receive window towards `peer` (shrunk by parked frames).
  [[nodiscard]] std::uint32_t advertised_window(const Proc& p,
                                                std::uint32_t peer) const;

  /// All-local crossing: deliver the verdict in memory, then batch the
  /// same frame onto the shadow wire for byte-verified redelivery.
  bool shadow_cross(ProcessId from, std::size_t to_index,
                    const MessagePtr& message, Lane lane);
  bool async_send(ProcessId from, ProcessId peer, const MessagePtr& message,
                  Lane lane);
  /// Appends `frame` to the (peer, lane) pending batch, arming the flush
  /// timer when the batch opens and flushing when a budget fills.
  void batch_frame(Proc& p, const LinkKey& key, FramePtr frame);
  /// Stages + transmits the (peer, lane) pending batch, if any.
  void flush_batch(Proc& p, const LinkKey& key);
  /// Encodes + sends the staged batch `seq` (data datagram with piggyback
  /// ack), through the loss model.
  void transmit(Proc& p, std::uint32_t peer, std::uint8_t lane,
                ReliableLink& link, std::uint64_t seq);
  void send_ack(Proc& p, std::uint32_t peer, std::uint8_t lane,
                bool probe = false);
  void send_datagram(Proc& p, std::uint32_t peer, util::Bytes bytes,
                     bool is_ack);
  /// Drains p's socket through the recvmmsg ring, decoding straight from
  /// the ring buffers, then sends the drain's delayed acks.  Returns
  /// datagrams seen.
  std::size_t pump_proc(Proc& p);
  void handle_datagram(Proc& p, Datagram d);
  void deliver_ready(Proc& p, std::uint32_t peer, std::uint8_t lane,
                     ReliableLink& link);

  // --- timer wheel ------------------------------------------------------

  /// (Re-)arms the link's retransmission timer at its earliest deadline;
  /// keeps an already-armed earlier timer.
  void schedule_retx(Proc& p, const LinkKey& key, ReliableLink& link);
  /// Arms (if not already pending) the zero-window probe timer for `peer`.
  void arm_probe(Proc& p, std::uint32_t peer, std::int64_t deadline_us);
  /// Flushes p's send queue; on kernel backpressure arms the retry timer.
  void flush_sendq(Proc& p);
  /// Advances the wheel to `now_us`, dispatching fires, and publishes the
  /// cascade-count delta to metrics.
  void pump_wheel(std::int64_t now_us);
  void on_timer(std::uint64_t payload, std::int64_t now_us);
  /// Retry budget exhausted towards key.first: crash the peer
  /// (distributed) — an all-local shadow link must never die.
  void link_death(Proc& p, const LinkKey& key);
  /// One service turn shared by service()/pump(): wheel, sockets, send
  /// queues, optional µs-exact wait.
  std::size_t service_once(std::int64_t timeout_us);

  Network inner_;
  Config config_;
  DatagramLossModel loss_;
  UdpLaneStats lane_stats_;
  util::TimerWheel wheel_;
  std::uint64_t wheel_cascades_noted_ = 0;  // last value pushed to metrics
  std::uint64_t crossings_ = 0;             // shadow crossings since start
  std::vector<std::unique_ptr<Proc>> procs_;
  std::vector<std::unique_ptr<LocalAdapter>> adapters_;
  std::vector<std::unique_ptr<RemoteProxy>> proxies_;
  std::map<std::uint32_t, std::size_t> proc_index_;   // raw id -> procs_ idx
  std::map<std::uint32_t, std::uint16_t> peer_ports_; // distributed peers
  std::function<void(const Datagram&)> stray_handler_;
  std::vector<std::uint64_t> due_scratch_;  // retx fire scratch
  std::vector<int> fd_scratch_;             // service wait scratch
  bool distributed_ = false;
};

}  // namespace svs::net
