// _GNU_SOURCE before any header: sendmmsg/recvmmsg/ppoll are glibc
// extensions gated behind __USE_GNU.
#ifndef _GNU_SOURCE
#define _GNU_SOURCE
#endif

#include "net/udp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "metrics/stats.hpp"
#include "util/contracts.hpp"

namespace svs::net {
namespace {

// Largest UDP payload; every ring buffer is this size so any datagram fits.
constexpr std::size_t kDatagramMax = 65536;
// sendmmsg/recvmmsg vector length ceiling (bounds the stack-built header
// arrays; RecvRing capacity is REQUIREd to stay within it).
constexpr std::size_t kMaxVector = 64;

[[noreturn]] void fail(const char* what) {
  throw util::ContractViolation(std::string(what) + ": " +
                                std::strerror(errno));
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

RecvRing::RecvRing(std::size_t capacity) {
  SVS_REQUIRE(capacity >= 1 && capacity <= kMaxVector,
              "ring capacity must be in [1, 64]");
  buffers_.resize(capacity);
  lengths_.resize(capacity, 0);
}

std::span<const std::uint8_t> RecvRing::datagram(std::size_t i) const {
  SVS_REQUIRE(i < count_, "ring index past the filled count");
  return {buffers_[i].data(), lengths_[i]};
}

UdpSocket::UdpSocket(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) fail("socket(AF_INET, SOCK_DGRAM)");
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    close_fd();
    fail("fcntl(O_NONBLOCK)");
  }
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    close_fd();
    fail("bind(127.0.0.1)");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    close_fd();
    fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

UdpSocket::~UdpSocket() { close_fd(); }

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_), use_mmsg_(other.use_mmsg_),
      counters_(other.counters_) {
  other.fd_ = -1;
  other.port_ = 0;
}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    close_fd();
    fd_ = other.fd_;
    port_ = other.port_;
    use_mmsg_ = other.use_mmsg_;
    counters_ = other.counters_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

void UdpSocket::close_fd() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void UdpSocket::set_rcvbuf(int bytes) {
  SVS_REQUIRE(fd_ >= 0, "socket closed");
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof bytes) < 0) {
    fail("setsockopt(SO_RCVBUF)");
  }
}

int UdpSocket::rcvbuf() const {
  SVS_REQUIRE(fd_ >= 0, "socket closed");
  int bytes = 0;
  socklen_t len = sizeof bytes;
  if (::getsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, &len) < 0) {
    fail("getsockopt(SO_RCVBUF)");
  }
  return bytes;
}

UdpSocket::SendResult UdpSocket::send_one(std::uint16_t port,
                                          const std::uint8_t* data,
                                          std::size_t size) {
  const sockaddr_in addr = loopback_addr(port);
  ++counters_.send_syscalls;
  ++counters_.single_sends;
  metrics::counters::note_send_syscall();
  const ssize_t n =
      ::sendto(fd_, data, size, 0, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr);
  if (n < 0) {
    // A full send buffer is backpressure: the caller resumes later.  A
    // refusal is just datagram loss as far as the reliability lane is
    // concerned.
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) {
      return SendResult::blocked;
    }
    if (errno == ECONNREFUSED || errno == EPERM) return SendResult::refused;
    fail("sendto(127.0.0.1)");
  }
  ++counters_.datagrams_sent;
  return SendResult::ok;
}

bool UdpSocket::send_to(std::uint16_t port, const std::uint8_t* data,
                        std::size_t size) {
  SVS_REQUIRE(fd_ >= 0, "socket closed");
  return send_one(port, data, size) == SendResult::ok;
}

bool UdpSocket::send_batch(std::span<const OutDatagram> items,
                           std::size_t& sent) {
  SVS_REQUIRE(fd_ >= 0, "socket closed");
  sent = 0;
  while (sent < items.size()) {
    if (!use_mmsg_) {
      const OutDatagram& d = items[sent];
      switch (send_one(d.port, d.data, d.size)) {
        case SendResult::ok:
          ++sent;
          break;
        case SendResult::refused:
          ++counters_.refused_drops;
          ++sent;
          break;
        case SendResult::blocked:
          return false;
      }
      continue;
    }
    const std::size_t chunk = std::min(items.size() - sent, kMaxVector);
    sockaddr_in addrs[kMaxVector];
    iovec iovs[kMaxVector];
    mmsghdr msgs[kMaxVector];
    for (std::size_t i = 0; i < chunk; ++i) {
      const OutDatagram& d = items[sent + i];
      addrs[i] = loopback_addr(d.port);
      iovs[i].iov_base = const_cast<std::uint8_t*>(d.data);
      iovs[i].iov_len = d.size;
      msgs[i] = mmsghdr{};
      msgs[i].msg_hdr.msg_name = &addrs[i];
      msgs[i].msg_hdr.msg_namelen = sizeof addrs[i];
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    ++counters_.send_syscalls;
    ++counters_.mmsg_sends;
    metrics::counters::note_send_syscall();
    const int n = ::sendmmsg(fd_, msgs, static_cast<unsigned>(chunk), 0);
    if (n < 0) {
      if (errno == ENOSYS || errno == EOPNOTSUPP) {
        use_mmsg_ = false;  // kernel without sendmmsg: fall back for good
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) {
        return false;
      }
      if (errno == ECONNREFUSED || errno == EPERM) {
        // The head datagram was refused: drop it as loss and keep going.
        ++counters_.refused_drops;
        ++sent;
        continue;
      }
      fail("sendmmsg(127.0.0.1)");
    }
    sent += static_cast<std::size_t>(n);
    counters_.datagrams_sent += static_cast<std::uint64_t>(n);
    // n < chunk means the (sent)-th datagram hit an error the kernel will
    // report on the next call; loop around and let that call classify it.
  }
  return true;
}

bool UdpSocket::recv(util::Bytes& buffer) {
  SVS_REQUIRE(fd_ >= 0, "socket closed");
  // 64 KiB covers any UDP payload; resize down to the actual datagram.
  buffer.resize(kDatagramMax);
  ++counters_.recv_syscalls;
  ++counters_.single_recvs;
  metrics::counters::note_recv_syscall();
  const ssize_t n = ::recv(fd_, buffer.data(), buffer.size(), 0);
  if (n < 0) {
    buffer.clear();
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNREFUSED) {
      return false;
    }
    fail("recv");
  }
  buffer.resize(static_cast<std::size_t>(n));
  ++counters_.datagrams_received;
  return true;
}

std::size_t UdpSocket::recv_batch(RecvRing& ring) {
  SVS_REQUIRE(fd_ >= 0, "socket closed");
  ring.count_ = 0;
  const std::size_t cap = ring.capacity();
  // Lazy buffer allocation: rings are cheap to hold, 64 KiB per slot is
  // only paid once the socket actually receives.
  for (std::size_t i = 0; i < cap; ++i) {
    if (ring.buffers_[i].size() != kDatagramMax) {
      ring.buffers_[i].resize(kDatagramMax);
    }
  }
  if (use_mmsg_) {
    iovec iovs[kMaxVector];
    mmsghdr msgs[kMaxVector];
    for (std::size_t i = 0; i < cap; ++i) {
      iovs[i].iov_base = ring.buffers_[i].data();
      iovs[i].iov_len = kDatagramMax;
      msgs[i] = mmsghdr{};
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    ++counters_.recv_syscalls;
    ++counters_.mmsg_recvs;
    metrics::counters::note_recv_syscall();
    const int n = ::recvmmsg(fd_, msgs, static_cast<unsigned>(cap),
                             MSG_DONTWAIT, nullptr);
    if (n >= 0) {
      for (int i = 0; i < n; ++i) ring.lengths_[i] = msgs[i].msg_len;
      ring.count_ = static_cast<std::size_t>(n);
      counters_.datagrams_received += static_cast<std::uint64_t>(n);
      return ring.count_;
    }
    if (errno == ENOSYS || errno == EOPNOTSUPP) {
      use_mmsg_ = false;  // fall through to the single-call loop below
    } else if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
               errno == ECONNREFUSED) {
      return 0;
    } else {
      fail("recvmmsg");
    }
  }
  while (ring.count_ < cap) {
    ++counters_.recv_syscalls;
    ++counters_.single_recvs;
    metrics::counters::note_recv_syscall();
    const ssize_t n = ::recv(fd_, ring.buffers_[ring.count_].data(),
                             kDatagramMax, MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
          errno == ECONNREFUSED) {
        break;
      }
      fail("recv");
    }
    ring.lengths_[ring.count_++] = static_cast<std::size_t>(n);
    ++counters_.datagrams_received;
  }
  return ring.count_;
}

bool UdpSocket::wait_readable(std::span<const int> fds,
                              std::int64_t timeout_us) {
  std::vector<pollfd> polls;
  polls.reserve(fds.size());
  for (const int fd : fds) polls.push_back(pollfd{fd, POLLIN, 0});
  // ppoll, not poll: the transport's timer wheel runs µs-resolution
  // deadlines (200µs batch flushes), which poll's whole-millisecond
  // timeout would round to spin-or-late.
  timespec ts{};
  if (timeout_us > 0) {
    ts.tv_sec = static_cast<time_t>(timeout_us / 1'000'000);
    ts.tv_nsec = static_cast<long>(timeout_us % 1'000'000) * 1'000;
  }
  const int n = ::ppoll(polls.data(), polls.size(), &ts, nullptr);
  if (n < 0) {
    if (errno == EINTR) return false;
    fail("ppoll");
  }
  return n > 0;
}

void SendQueue::push(std::uint16_t port, util::Bytes payload) {
  if (items_.size() >= kMaxQueue) {
    // Drop-newest: the retransmission lane will re-stage it; dropping the
    // head would reorder a link's frames.
    ++overflow_drops_;
    return;
  }
  items_.emplace_back(port, std::move(payload));
}

}  // namespace svs::net
