#include "net/udp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include "util/contracts.hpp"

namespace svs::net {
namespace {

[[noreturn]] void fail(const char* what) {
  throw util::ContractViolation(std::string(what) + ": " +
                                std::strerror(errno));
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

UdpSocket::UdpSocket(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) fail("socket(AF_INET, SOCK_DGRAM)");
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    close_fd();
    fail("fcntl(O_NONBLOCK)");
  }
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    close_fd();
    fail("bind(127.0.0.1)");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    close_fd();
    fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

UdpSocket::~UdpSocket() { close_fd(); }

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    close_fd();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

void UdpSocket::close_fd() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void UdpSocket::set_rcvbuf(int bytes) {
  SVS_REQUIRE(fd_ >= 0, "socket closed");
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof bytes) < 0) {
    fail("setsockopt(SO_RCVBUF)");
  }
}

int UdpSocket::rcvbuf() const {
  SVS_REQUIRE(fd_ >= 0, "socket closed");
  int bytes = 0;
  socklen_t len = sizeof bytes;
  if (::getsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, &len) < 0) {
    fail("getsockopt(SO_RCVBUF)");
  }
  return bytes;
}

bool UdpSocket::send_to(std::uint16_t port, const std::uint8_t* data,
                        std::size_t size) {
  SVS_REQUIRE(fd_ >= 0, "socket closed");
  const sockaddr_in addr = loopback_addr(port);
  const ssize_t n =
      ::sendto(fd_, data, size, 0, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr);
  if (n < 0) {
    // A full send buffer (or a transient kernel refusal) is just datagram
    // loss as far as the reliability lane is concerned.
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS ||
        errno == ECONNREFUSED || errno == EPERM) {
      return false;
    }
    fail("sendto(127.0.0.1)");
  }
  return static_cast<std::size_t>(n) == size;
}

bool UdpSocket::recv(util::Bytes& buffer) {
  SVS_REQUIRE(fd_ >= 0, "socket closed");
  // 64 KiB covers any UDP payload; resize down to the actual datagram.
  buffer.resize(65536);
  const ssize_t n = ::recv(fd_, buffer.data(), buffer.size(), 0);
  if (n < 0) {
    buffer.clear();
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNREFUSED) {
      return false;
    }
    fail("recv");
  }
  buffer.resize(static_cast<std::size_t>(n));
  return true;
}

bool UdpSocket::wait_readable(std::span<const int> fds,
                              std::int64_t timeout_us) {
  std::vector<pollfd> polls;
  polls.reserve(fds.size());
  for (const int fd : fds) polls.push_back(pollfd{fd, POLLIN, 0});
  const int timeout_ms =
      timeout_us <= 0 ? 0 : static_cast<int>((timeout_us + 999) / 1000);
  const int n = ::poll(polls.data(), polls.size(), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return false;
    fail("poll");
  }
  return n > 0;
}

}  // namespace svs::net
